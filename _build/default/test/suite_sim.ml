open Ccr_refine
open Ccr_simulate
open Test_util

let k2 = Async.{ k = 2 }
let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let tests =
  [
    case "runs are deterministic given the seed" (fun () ->
        let prog = mig 3 in
        let m1 = Sim.run ~seed:7 ~steps:5000 prog k2 Sched.uniform in
        let m2 = Sim.run ~seed:7 ~steps:5000 prog k2 Sched.uniform in
        checkb "equal" true (m1 = m2);
        let m3 = Sim.run ~seed:8 ~steps:5000 prog k2 Sched.uniform in
        checkb "different seed differs somewhere" true
          (m1.Sim.rendezvous <> m3.Sim.rendezvous
          || m1.Sim.reqs <> m3.Sim.reqs
          || m1.Sim.per_remote <> m3.Sim.per_remote));
    case "message accounting is consistent" (fun () ->
        let prog = mig 3 in
        let m = Sim.run ~steps:20000 prog k2 Sched.uniform in
        checki "steps" 20000 m.Sim.steps;
        checkb "no deadlock" true (not m.Sim.deadlocked);
        checkb "messages add up" true
          (Sim.messages m = m.Sim.reqs + m.Sim.acks + m.Sim.nacks);
        (* every ack or nack answers a request *)
        checkb "responses bounded by requests" true
          (m.Sim.acks + m.Sim.nacks <= m.Sim.reqs);
        checkb "retransmissions bounded by nacks" true
          (m.Sim.retransmissions <= m.Sim.nacks + m.Sim.reqs);
        (* rule counts cover every completion *)
        let rc r = List.assoc r m.Sim.rule_counts in
        checki "completions match rules" m.Sim.rendezvous
          (rc Async.H_C1 + rc Async.H_C1_silent + rc Async.R_C3_ack
          + rc Async.R_C3_silent + rc Async.R_repl_recv + rc Async.H_T1_repl);
        checki "per-remote sums to total" m.Sim.rendezvous
          (Array.fold_left ( + ) 0 m.Sim.per_remote));
    case "optimized beats generic beats nothing (msgs/rendezvous)" (fun () ->
        let opt = Sim.run ~steps:30000 (mig 3) k2 Sched.uniform in
        let gen =
          Sim.run ~steps:30000
            (compile ~reqrep:false ~n:3 (Ccr_protocols.Migratory.system ()))
            k2 Sched.uniform
        in
        let hand =
          Sim.run ~steps:30000
            (Ccr_protocols.Migratory_hand.prog ~n:3 ())
            k2 Sched.uniform
        in
        checkb "optimized < generic" true
          (Sim.per_rendezvous opt < Sim.per_rendezvous gen);
        checkb "hand <= optimized (the unacked LR)" true
          (Sim.per_rendezvous hand <= Sim.per_rendezvous opt);
        (* the paper's figure: roughly 2 with the optimization, 4 without *)
        checkb "optimized near 2" true (Sim.per_rendezvous opt < 2.6);
        checkb "generic near 4" true (Sim.per_rendezvous gen > 2.8));
    case "home-first scheduling reduces nacks" (fun () ->
        let prog = mig 4 in
        let uni = Sim.run ~steps:30000 prog k2 Sched.uniform in
        let hf = Sim.run ~steps:30000 prog k2 Sched.home_first in
        checkb "fewer nacks" true (hf.Sim.nacks <= uni.Sim.nacks));
    case "starvation: the adversary freezes its victim" (fun () ->
        let prog = mig 3 in
        let m = Sim.run ~steps:30000 prog k2 (Sched.starve 0) in
        checki "victim completes nothing" 0 m.Sim.per_remote.(0);
        checkb "the others make progress (weak fairness)" true
          (m.Sim.per_remote.(1) > 100 && m.Sim.per_remote.(2) > 100));
    case "uniform scheduling starves nobody" (fun () ->
        let prog = mig 3 in
        let m = Sim.run ~steps:30000 prog k2 Sched.uniform in
        checkb "all progress" true
          (Array.for_all (fun c -> c > 100) m.Sim.per_remote));
    case "buffer occupancy histogram covers the run" (fun () ->
        let prog = mig 3 in
        let m = Sim.run ~steps:10000 prog k2 Sched.uniform in
        checki "histogram sums to steps" m.Sim.steps
          (Array.fold_left ( + ) 0 m.Sim.buf_occupancy);
        checkb "buffer actually used" true (m.Sim.buf_occupancy.(1) > 0));
    case "larger buffers reduce nacks" (fun () ->
        let prog = compile ~n:6 (Ccr_protocols.Migratory.system ()) in
        let at_k k = (Sim.run ~steps:30000 prog Async.{ k } Sched.uniform).Sim.nacks in
        let n2 = at_k 2 and n6 = at_k 6 in
        checkb "k=6 <= k=2" true (n6 <= n2));
    case "latency accounting is consistent" (fun () ->
        let prog = mig 3 in
        let m = Sim.run ~steps:20000 prog k2 Sched.uniform in
        checkb "latencies recorded" true (m.Sim.latency_count > 100);
        checkb "max bounds mean" true
          (float_of_int m.Sim.latency_max >= Sim.mean_latency m);
        checkb "mean at least a round trip" true (Sim.mean_latency m >= 2.0));
    case "the generic scheme has higher transaction latency" (fun () ->
        let opt = Sim.run ~steps:30000 (mig 2) k2 Sched.uniform in
        let gen =
          Sim.run ~steps:30000
            (compile ~reqrep:false ~n:2 (Ccr_protocols.Migratory.system ()))
            k2 Sched.uniform
        in
        checkb "generic slower" true
          (Sim.mean_latency gen > Sim.mean_latency opt));
    case "per_rendezvous of an empty run is infinite" (fun () ->
        let prog = mig 2 in
        let m = Sim.run ~steps:0 prog k2 Sched.uniform in
        checkb "infinite" true (Sim.per_rendezvous m = Float.infinity));
  ]

let suite = ("sim", tests)
