The protocol catalogue:

  $ ../../bin/ccr.exe list
  migratory        the Avalanche migratory protocol (paper Figures 2-3)
  migratory-data   migratory carrying the cache line's contents (last-writer id)
  migratory-hand   the Avalanche team's hand-designed migratory protocol (unacked LR, paper §5); no rendezvous level [refined level only]
  invalidate       the Avalanche invalidate protocol (multi-reader/single-writer, reconstructed)
  mesi             MESI: invalidate plus an Exclusive-clean state with silent E->M upgrade and a downgrade path
  write-update     write-update: writes broadcast to sharers, deferred-writer serialization, quiescent copies agree
  lock             a mutual-exclusion lock server (quickstart protocol)
  barrier          barrier synchronization (choose-driven release loop, generic refinement path)

The request/reply analysis (paper 3.3):

  $ ../../bin/ccr.exe pairs migratory
  pair: req/gr (remote-initiated)
  pair: inv/ID (home-initiated)
  not optimizable: ID       send of ID is not followed by a single unconditional wait
  not optimizable: LR       send of LR is not followed by a single unconditional wait
  not optimizable: gr       remote does not answer gr with a single reply after local actions (stuck at state V)

Unknown protocols are rejected with the catalogue:

  $ ../../bin/ccr.exe pairs nonsense
  ccr: PROTOCOL argument: unknown protocol "nonsense" (try: migratory,
       migratory-data, migratory-hand, invalidate, mesi, write-update, lock,
       barrier, or a .ccr file)
  Usage: ccr pairs [OPTION]… PROTOCOL
  Try 'ccr pairs --help' or 'ccr --help' for more information.
  [124]

The soundness check is deterministic:

  $ ../../bin/ccr.exe eq1 migratory -n 2
  eq1: OK — 129 async states (242 transitions: 162 stutters, 80 rendezvous steps) covering 15 rendezvous states

  $ ../../bin/ccr.exe progress lock -n 2
  108 states; 0 deadlocks; 0 states from which no rendezvous can complete
