  $ ../../bin/ccr.exe show migratory --level refined
  $ ../../bin/ccr.exe show lock --format promela -n 2 | head -12
  $ ../../bin/ccr.exe explain lock | sed -n '1,20p'
