Protocols load from textual .ccr files; the analysis and the soundness
check give the same results as the built-in definitions:

  $ ../../bin/ccr.exe pairs ../../protocols/migratory.ccr
  pair: req/gr (remote-initiated)
  pair: inv/ID (home-initiated)
  not optimizable: ID       send of ID is not followed by a single unconditional wait
  not optimizable: LR       send of LR is not followed by a single unconditional wait
  not optimizable: gr       remote does not answer gr with a single reply after local actions (stuck at state V)

  $ ../../bin/ccr.exe eq1 ../../protocols/lock.ccr -n 3
  eq1: OK — 859 async states (2397 transitions: 1620 stutters, 777 rendezvous steps) covering 44 rendezvous states

Exports reload losslessly:

  $ ../../bin/ccr.exe export barrier > b.ccr
  $ ../../bin/ccr.exe progress b.ccr -n 2
  196 states; 0 deadlocks; 0 states from which no rendezvous can complete

Bad files produce located errors:

  $ printf 'system x\nhome { var : rid }\n' > bad.ccr
  $ ../../bin/ccr.exe pairs bad.ccr
  ccr: PROTOCOL argument: parse error at line 2, column 13: expected an
       identifier, found ':'
  Usage: ccr pairs [OPTION]… PROTOCOL
  Try 'ccr pairs --help' or 'ccr --help' for more information.
  [124]

A protocol that exists only as a file (no OCaml): the readers-writer
lock shipped in protocols/rwlock.ccr:

  $ ../../bin/ccr.exe pairs ../../protocols/rwlock.ccr
  pair: acqR/grR (remote-initiated)
  pair: acqW/grW (remote-initiated)
  not optimizable: relR     send of relR is not followed by a single unconditional wait
  not optimizable: relW     send of relW is not followed by a single unconditional wait
  not optimizable: grR      target of grR (at state GR) is not a stable variable
  not optimizable: grW      overlaps another request/reply pair

  $ ../../bin/ccr.exe eq1 ../../protocols/rwlock.ccr -n 2
  eq1: OK — 435 async states (876 transitions: 534 stutters, 342 rendezvous steps) covering 57 rendezvous states

  $ ../../bin/ccr.exe progress ../../protocols/rwlock.ccr -n 2
  435 states; 0 deadlocks; 0 states from which no rendezvous can complete
