  $ ../../bin/ccr.exe pairs ../../protocols/migratory.ccr
  $ ../../bin/ccr.exe eq1 ../../protocols/lock.ccr -n 3
  $ ../../bin/ccr.exe export barrier > b.ccr
  $ ../../bin/ccr.exe progress b.ccr -n 2
  $ printf 'system x\nhome { var : rid }\n' > bad.ccr
  $ ../../bin/ccr.exe pairs bad.ccr
  $ ../../bin/ccr.exe pairs ../../protocols/rwlock.ccr
  $ ../../bin/ccr.exe eq1 ../../protocols/rwlock.ccr -n 2
  $ ../../bin/ccr.exe progress ../../protocols/rwlock.ccr -n 2
