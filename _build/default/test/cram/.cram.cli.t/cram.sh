  $ ../../bin/ccr.exe list
  $ ../../bin/ccr.exe pairs migratory
  $ ../../bin/ccr.exe pairs nonsense
  $ ../../bin/ccr.exe eq1 migratory -n 2
  $ ../../bin/ccr.exe progress lock -n 2
