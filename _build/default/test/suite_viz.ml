open Ccr_core
open Ccr_refine
open Test_util

let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let tests =
  [
    case "msc: header names every lane" (fun () ->
        let prog = mig 3 in
        let s = Ccr_viz.Msc.render prog [] in
        checkb "home" true (contains_sub ~sub:"home" s);
        checkb "r0" true (contains_sub ~sub:"r0" s);
        checkb "r2" true (contains_sub ~sub:"r2" s));
    case "msc: emissions draw arrows, locals draw dots" (fun () ->
        let prog = mig 2 in
        let labels =
          [
            Async.{ rule = R_C1; actor = 0; subject = "req" };
            Async.{ rule = H_admit; actor = 0; subject = "req" };
            Async.{ rule = H_C1_silent; actor = 0; subject = "req" };
            Async.{ rule = H_reply_send; actor = 0; subject = "gr" };
            Async.{ rule = R_repl_recv; actor = 0; subject = "gr" };
          ]
        in
        let s = Ccr_viz.Msc.render prog labels in
        let lines = String.split_on_char '\n' s in
        checki "header + 5 events + trailing" 7 (List.length lines);
        let l1 = List.nth lines 1 in
        checkb "arrow toward home" true (contains_sub ~sub:"<" l1);
        let l2 = List.nth lines 2 in
        checkb "local marker" true (contains_sub ~sub:"o" l2);
        let l4 = List.nth lines 4 in
        checkb "arrow toward remote" true (contains_sub ~sub:">" l4));
    case "msc: render_run is deterministic and covers its steps" (fun () ->
        let prog = mig 2 in
        let a = Ccr_viz.Msc.render_run ~seed:7 ~steps:30 prog Async.{ k = 2 } in
        let b = Ccr_viz.Msc.render_run ~seed:7 ~steps:30 prog Async.{ k = 2 } in
        checks "deterministic" a b;
        checki "one line per step plus header"
          (30 + 1)
          (List.length
             (List.filter (( <> ) "") (String.split_on_char '\n' a))));
    case "run_trace matches run's step count" (fun () ->
        let prog = mig 3 in
        let cfg = Async.{ k = 2 } in
        let t =
          Ccr_simulate.Sim.run_trace ~seed:5 ~steps:500 prog cfg
            Ccr_simulate.Sched.uniform
        in
        checki "length" 500 (List.length t));
    case "report: migratory derivation mentions the §3.3 facts" (fun () ->
        let s = Report.derive (Ccr_protocols.Migratory.system ()) in
        List.iter
          (fun sub -> checkb sub true (contains_sub ~sub s))
          [
            "req/gr";
            "inv/ID";
            "fire-and-forget reply";
            "request + transient state awaiting ack/nack";
            "consumed silently";
            "wait bypassed by the refinement";
            "progress";
            "ack buffer";
          ]);
    case "report: hand overrides are called out" (fun () ->
        (* derive the report for the hand variant's source and check the
           fire-and-forget section via a linked prog *)
        let prog = Ccr_protocols.Migratory_hand.prog ~n:2 () in
        checkb "LR is ff" true (prog.Prog.ff_msgs = [ "LR" ]));
    case "report: barrier has no pairs and says so" (fun () ->
        let s = Report.derive Ccr_protocols.Barrier.system in
        checkb "generic note" true
          (contains_sub ~sub:"No pair qualifies" s
          || contains_sub ~sub:"kept generic" s));
    case "promela: Full_set resolves to a mask" (fun () ->
        let p = Ccr_viz.Promela.of_system ~n:3 Ccr_protocols.Barrier.system in
        checkb "mask" true (contains_sub ~sub:"((1 << 3) - 1)" p));
    case "dot output quotes special characters" (fun () ->
        let sys =
          Dsl.(
            system "q"
              ~home:
                (process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
                   [
                     state "U" [ recv_any "c" "m" [] ~goto:"G" ];
                     state "G" [ send_to (v "c") "g" [] ~goto:"U" ];
                   ])
              ~remote:
                (process "r" ~vars:[] ~init:"T"
                   [
                     state "T" [ send_home "m" [] ~goto:"W" ];
                     state "W" [ recv_home "g" [] ~goto:"T" ];
                   ]))
        in
        let d = Ccr_viz.Dot.of_process sys.Ir.home in
        checkb "nodes quoted" true (contains_sub ~sub:"\"U\"" d);
        checkb "label" true (contains_sub ~sub:"label=" d));
  ]

let suite = ("viz", tests)
