open Ccr_core
open Ccr_semantics
open Test_util

let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let labels prog st =
  Rendezvous.successors prog st
  |> List.map (fun (l, _) -> Fmt.str "%a" Rendezvous.pp_label l)
  |> List.sort String.compare

let step_via prog st pred =
  match
    List.find_opt (fun (l, _) -> pred l) (Rendezvous.successors prog st)
  with
  | Some (_, st') -> st'
  | None -> Alcotest.fail "expected transition not enabled"

let is_rv msg (l : Rendezvous.label) =
  match l with
  | Rendezvous.L_rendezvous r -> r.msg = msg
  | Rendezvous.L_tau _ -> false

let is_rv_from msg who (l : Rendezvous.label) =
  match l with
  | Rendezvous.L_rendezvous r -> r.msg = msg && r.active = who
  | Rendezvous.L_tau _ -> false

let tests =
  [
    case "initial state" (fun () ->
        let prog = mig 2 in
        let st = Rendezvous.initial prog in
        checki "home ctl" (Prog.state_index prog.home "F") st.h.ctl;
        checki "remotes" 2 (Array.length st.r);
        checki "remote ctl" (Prog.state_index prog.remote "I") st.r.(0).ctl);
    case "initial successors are the two requests" (fun () ->
        let prog = mig 2 in
        let st = Rendezvous.initial prog in
        let succs = Rendezvous.successors prog st in
        checki "two" 2 (List.length succs);
        checkb "all req rendezvous" true
          (List.for_all (fun (l, _) -> is_rv "req" l) succs));
    case "grant walkthrough" (fun () ->
        let prog = mig 2 in
        let st = Rendezvous.initial prog in
        (* r0 requests, home grants, r0 holds the line *)
        let st = step_via prog st (is_rv_from "req" (Rendezvous.Pr 0)) in
        checki "home at Fg" (Prog.state_index prog.home "Fg") st.h.ctl;
        let st = step_via prog st (is_rv "gr") in
        checki "home at E" (Prog.state_index prog.home "E") st.h.ctl;
        checki "r0 at V" (Prog.state_index prog.remote "V") st.r.(0).ctl;
        checkb "owner recorded" true
          (Value.equal st.h.env.(Prog.var_index prog.home "o") (Value.Vrid 0));
        (* eviction path: r0 relinquishes *)
        let st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr 0, "evict"))
        in
        checki "r0 at Ev" (Prog.state_index prog.remote "Ev") st.r.(0).ctl;
        let st = step_via prog st (is_rv "LR") in
        checki "home back at F" (Prog.state_index prog.home "F") st.h.ctl;
        checki "r0 at I" (Prog.state_index prog.remote "I") st.r.(0).ctl);
    case "invalidation walkthrough" (fun () ->
        let prog = mig 2 in
        let st = Rendezvous.initial prog in
        let st = step_via prog st (is_rv_from "req" (Rendezvous.Pr 0)) in
        let st = step_via prog st (is_rv "gr") in
        (* r1 requests while r0 owns: home revokes via inv/ID *)
        let st = step_via prog st (is_rv_from "req" (Rendezvous.Pr 1)) in
        checki "home at I1" (Prog.state_index prog.home "I1") st.h.ctl;
        let st = step_via prog st (is_rv "inv") in
        checki "home at I2" (Prog.state_index prog.home "I2") st.h.ctl;
        checki "r0 at Iv" (Prog.state_index prog.remote "Iv") st.r.(0).ctl;
        let st = step_via prog st (is_rv "ID") in
        let st = step_via prog st (is_rv "gr") in
        checki "r1 at V" (Prog.state_index prog.remote "V") st.r.(1).ctl;
        checkb "owner is r1" true
          (Value.equal st.h.env.(Prog.var_index prog.home "o") (Value.Vrid 1)));
    case "recv_from only matches the addressed remote" (fun () ->
        let prog = mig 2 in
        let st = Rendezvous.initial prog in
        let st = step_via prog st (is_rv_from "req" (Rendezvous.Pr 0)) in
        let st = step_via prog st (is_rv "gr") in
        let st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr 0, "evict"))
        in
        (* home at E accepts LR only from the owner r0; r1's req is also
           possible, but no LR from r1 *)
        let ls = labels prog st in
        checkb "LR from r0 present" true
          (List.exists (fun s -> contains_sub ~sub:"r0 -> home: LR" s) ls);
        checkb "no LR from r1" true
          (not (List.exists (fun s -> contains_sub ~sub:"r1 -> home: LR" s) ls)));
    case "payload values travel" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ~with_data:true ()) in
        let st = Rendezvous.initial prog in
        let st = step_via prog st (is_rv_from "req" (Rendezvous.Pr 0)) in
        let st = step_via prog st (is_rv "gr") in
        (* r0 writes its identity+0? writes Self = r0; then evicts and the
           home's copy must reflect the write after LR *)
        let st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr 0, "write"))
        in
        checkb "r0 wrote" true
          (Value.equal
             st.r.(0).env.(Prog.var_index prog.remote "d")
             (Value.Vrid 0));
        let st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr 0, "evict"))
        in
        let st = step_via prog st (is_rv "LR") in
        checkb "home copy updated" true
          (Value.equal st.h.env.(Prog.var_index prog.home "d") (Value.Vrid 0)));
    case "choose expands over set members" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Invalidate.system in
        let st = Rendezvous.initial prog in
        (* two remotes obtain shared access, a third requests M: the home
           must offer an inv rendezvous to each sharer *)
        let read i st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr i, "read"))
        in
        let st = read 0 st in
        let st = step_via prog st (is_rv_from "reqS" (Rendezvous.Pr 0)) in
        let st = step_via prog st (is_rv "grS") in
        let st = read 1 st in
        let st = step_via prog st (is_rv_from "reqS" (Rendezvous.Pr 1)) in
        let st = step_via prog st (is_rv "grS") in
        let st =
          step_via prog st (fun l -> l = Rendezvous.L_tau (Rendezvous.Pr 2, "write"))
        in
        let st = step_via prog st (is_rv_from "reqM" (Rendezvous.Pr 2)) in
        checki "home at Inv" (Prog.state_index prog.home "Inv") st.h.ctl;
        let invs =
          Rendezvous.successors prog st
          |> List.filter (fun (l, _) -> is_rv "inv" l)
        in
        checki "two inv options" 2 (List.length invs));
    case "encode distinguishes reachable states" (fun () ->
        let prog = mig 2 in
        (* walk the full space; Explore's hashtable relies on injectivity,
           so check no two distinct pretty-printed states share a key *)
        let seen = Hashtbl.create 64 in
        let rec go st =
          let key = Rendezvous.encode st in
          match Hashtbl.find_opt seen key with
          | Some repr ->
            checks "same state" repr
              (Fmt.str "%a" (Rendezvous.pp_state prog) st)
          | None ->
            Hashtbl.add seen key (Fmt.str "%a" (Rendezvous.pp_state prog) st);
            List.iter (fun (_, st') -> go st') (Rendezvous.successors prog st)
        in
        go (Rendezvous.initial prog);
        checkb "nontrivial" true (Hashtbl.length seen > 10));
    case "state-count growth is polynomial, not exponential" (fun () ->
        (* the paper's Table 3 shape: the rendezvous protocol stays tiny;
           regression-anchor the exact small-n counts *)
        let counts =
          List.map (fun n -> (explore_rv (mig n)).states) [ 1; 2; 3; 4; 6 ]
        in
        (match counts with
        | [ _; c2; _; c4; c6 ] ->
          checkb "subquadratic-ish growth" true
            (c4 < 8 * c2 && c6 < 4 * c4)
        | _ -> assert false);
        checkb "monotone" true
          (List.sort compare counts = counts));
    case "state counts are stable" (fun () ->
        let counts =
          List.map (fun n -> (explore_rv (mig n)).states) [ 1; 2; 4 ]
        in
        Alcotest.(check (list int))
          "migratory rendezvous" Expected_counts.migratory_rv counts);
  ]

let suite = ("rendezvous", tests)
