open Ccr_core
open Ccr_refine
open Test_util

let k2 = Async.{ k = 2 }

let mig n = compile ~n (Ccr_protocols.Migratory.system ())
let mig_generic n = compile ~reqrep:false ~n (Ccr_protocols.Migratory.system ())

let ctl_of prog (st : Async.state) i =
  prog.Prog.remote.p_states.(st.Async.r.(i).r_ctl).cs_name

let hctl_of prog (st : Async.state) =
  prog.Prog.home.p_states.(st.Async.h.h_ctl).cs_name

(* ---- walkthrough scenarios -------------------------------------------- *)

(* Optimized migratory: request/reply means req is consumed silently and
   gr doubles as its ack. *)
let optimized_grant_walkthrough () =
  let prog = mig 2 in
  let st = Async.initial prog k2 in
  (* r0 requests: C1 (its buffer is empty) *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"req" Async.R_C1) in
  checkb "r0 awaits the reply" true
    (match st.Async.r.(0).r_mode with
    | Async.Rwait { repl = "gr"; _ } -> true
    | _ -> false);
  (* the request reaches the home's buffer, then is consumed silently *)
  let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
  checki "buffered" 1 (List.length st.Async.h.h_buf);
  let st = fire prog st (by_rule ~actor:0 Async.H_C1_silent) in
  checks "home granted" "Fg" (hctl_of prog st);
  checki "no ack in flight" 0 (List.length st.Async.to_r.(0));
  (* the grant is fire-and-forget *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"gr" Async.H_reply_send) in
  checks "home at E" "E" (hctl_of prog st);
  (* the reply completes both rendezvous at r0 *)
  let st = fire prog st (by_rule ~actor:0 Async.R_repl_recv) in
  checks "r0 at V" "V" (ctl_of prog st 0);
  checkb "r0 back in communication mode" true (st.Async.r.(0).r_mode = Async.Rcomm);
  st

(* Generic scheme: the same grant costs four messages and two transients. *)
let generic_grant_walkthrough () =
  let prog = mig_generic 2 in
  let st = Async.initial prog k2 in
  let st = fire prog st (by_rule ~actor:0 ~subject:"req" Async.R_C1) in
  checkb "r0 transient" true
    (match st.Async.r.(0).r_mode with Async.Rtrans _ -> true | _ -> false);
  let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
  (* plain consume acks *)
  let st = fire prog st (by_rule ~actor:0 Async.H_C1) in
  checkb "ack in flight" true (List.mem Wire.Ack st.Async.to_r.(0));
  let st = fire prog st (by_rule ~actor:0 Async.R_T1) in
  checks "r0 at Wg" "Wg" (ctl_of prog st 0);
  (* the grant is now a plain request: home goes transient *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"gr" Async.H_C2) in
  checkb "home transient" true
    (match st.Async.h.h_mode with
    | Async.Htrans { peer = 0; await = `Ack; _ } -> true
    | _ -> false);
  let st = fire prog st (by_rule ~actor:0 ~subject:"gr" Async.R_deliver) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"gr" Async.R_C3_ack) in
  checks "r0 at V" "V" (ctl_of prog st 0);
  let st = fire prog st (by_rule ~actor:0 Async.H_T1) in
  checks "home at E" "E" (hctl_of prog st);
  st

(* The crossing race of §3: the owner relinquishes while the home is
   invalidating it.  Exercises R_C2 (deleting the buffered inv), H_T3
   (implicit nack) and the home's recovery through its LR guard. *)
let crossing_walkthrough () =
  let prog = mig 2 in
  let st = optimized_grant_walkthrough () in
  (* r1 requests while r0 owns the line *)
  let st = fire prog st (by_rule ~actor:1 ~subject:"req" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
  let st = fire prog st (by_rule ~actor:1 Async.H_C1_silent) in
  checks "home at I1" "I1" (hctl_of prog st);
  (* home sends inv to the owner and goes transient *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.H_C2) in
  checkb "awaiting ID" true
    (match st.Async.h.h_mode with
    | Async.Htrans { peer = 0; await = `Repl "ID"; _ } -> true
    | _ -> false);
  (* meanwhile r0 evicts; the inv lands in its buffer *)
  let st = fire prog st (by_rule ~actor:0 Async.R_tau) in
  checks "r0 at Ev" "Ev" (ctl_of prog st 0);
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.R_deliver) in
  checkb "inv buffered at r0" true (st.Async.r.(0).r_buf <> None);
  (* r0 sends LR anyway: row C2 deletes the buffered inv *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"LR" Async.R_C2) in
  checkb "buffer cleared" true (st.Async.r.(0).r_buf = None);
  (* the crossing LR is an implicit nack for the inv *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"LR" Async.H_T3) in
  checkb "home back in communication mode" true
    (st.Async.h.h_mode = Async.Hcomm);
  checks "still at I1" "I1" (hctl_of prog st);
  checki "LR buffered" 1 (List.length st.Async.h.h_buf);
  (* the home now completes the LR rendezvous instead *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"LR" Async.H_C1) in
  checks "home at I3" "I3" (hctl_of prog st);
  let st = fire prog st (by_rule ~actor:0 Async.R_T1) in
  checks "r0 at I" "I" (ctl_of prog st 0);
  (* and grants to r1 *)
  let st = fire prog st (by_rule ~actor:1 ~subject:"gr" Async.H_reply_send) in
  let st = fire prog st (by_rule ~actor:1 Async.R_repl_recv) in
  checks "r1 at V" "V" (ctl_of prog st 1);
  st

(* The other interleaving: the LR is already in flight when the home sends
   inv; the transient remote ignores (drops) the home's request. *)
let ignore_walkthrough () =
  let prog = mig 2 in
  let st = optimized_grant_walkthrough () in
  let st = fire prog st (by_rule ~actor:1 ~subject:"req" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
  (* r0 evicts and sends LR first *)
  let st = fire prog st (by_rule ~actor:0 Async.R_tau) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"LR" Async.R_C1) in
  checkb "r0 transient" true
    (match st.Async.r.(0).r_mode with Async.Rtrans _ -> true | _ -> false);
  (* now the home processes r1's request and invalidates r0 *)
  let st = fire prog st (by_rule ~actor:1 Async.H_C1_silent) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.H_C2) in
  (* the inv reaches r0 while it is transient: row T3 drops it *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.R_T3) in
  checkb "inv vanished" true
    (st.Async.to_r.(0) = [] && st.Async.r.(0).r_buf = None);
  st

(* The home-initiated request/reply pair completing normally. *)
let inv_id_walkthrough () =
  let prog = mig 2 in
  let st = optimized_grant_walkthrough () in
  let st = fire prog st (by_rule ~actor:1 ~subject:"req" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
  let st = fire prog st (by_rule ~actor:1 Async.H_C1_silent) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.H_C2) in
  (* r0 consumes the inv silently (no ack) ... *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.R_deliver) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.R_C3_silent) in
  checks "r0 at Iv" "Iv" (ctl_of prog st 0);
  checki "no ack sent" 0 (List.length st.Async.to_h.(0));
  (* ... and replies with ID, fire-and-forget *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"ID" Async.R_reply_send) in
  checks "r0 at I" "I" (ctl_of prog st 0);
  (* the ID completes both rendezvous at the home *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"ID" Async.H_T1_repl) in
  checks "home at I3" "I3" (hctl_of prog st);
  st

(* ---- hand-crafted states for hard-to-reach rows ------------------------ *)

(* A full buffer of stale requests at a send state forces row C2's
   eviction: the oldest request is nacked to free the ack-buffer slot. *)
let eviction_test () =
  let prog = mig_generic 4 in
  let st = Async.initial prog k2 in
  let junk i = (i, Wire.{ m_name = "req"; m_payload = [] }) in
  (* home at I1 (inv pending to owner 0), buffer full of requests from
     r2 and r3 — neither matches I1's only receive guard (LR from o) *)
  let h =
    {
      st.Async.h with
      h_ctl = Prog.state_index prog.home "I1";
      h_buf = [ junk 2; junk 3 ];
    }
  in
  (* owner r0 parked in V so the inv has a target *)
  let r0 = { (st.Async.r.(0)) with r_ctl = Prog.state_index prog.remote "V" } in
  let st = { st with Async.h; r = (let a = Array.copy st.Async.r in a.(0) <- r0; a) } in
  let st' = fire prog st (by_rule ~actor:0 ~subject:"inv" Async.H_C2) in
  checki "one entry evicted" 1 (List.length st'.Async.h.h_buf);
  checkb "oldest was evicted" true (fst (List.hd st'.Async.h.h_buf) = 3);
  checkb "nack sent to r2" true (List.mem Wire.Nack st'.Async.to_r.(2));
  checkb "inv sent to r0" true
    (List.exists
       (function Wire.Req m -> m.Wire.m_name = "inv" | _ -> false)
       st'.Async.to_r.(0))

(* Rows T4/T5/T6: admission of foreign requests while transient. *)
let transient_admission_test () =
  let prog = mig_generic 4 in
  let cfg = Async.{ k = 4 } in
  let st = Async.initial prog cfg in
  let req = Wire.Req { m_name = "req"; m_payload = [] } in
  (* home transient towards r0 (gr in the generic scheme) *)
  let gr_guard =
    let s = prog.home.p_states.(Prog.state_index prog.home "Fg") in
    match s.Prog.cs_sends with [ g ] -> g | _ -> assert false
  in
  let h =
    {
      st.Async.h with
      h_ctl = Prog.state_index prog.home "Fg";
      h_mode =
        Async.Htrans
          {
            guard = gr_guard;
            peer = 0;
            scratch = Array.copy st.Async.h.h_env;
            await = `Ack;
          };
    }
  in
  let st = { st with Async.h } in
  (* free = 4 > 2: T4 admits *)
  let st1 = { st with Async.to_h = (let a = Array.copy st.Async.to_h in a.(1) <- [ req ]; a) } in
  let st2 = fire ~k:4 prog st1 (by_rule ~actor:1 Async.H_T4) in
  checki "admitted" 1 (List.length st2.Async.h.h_buf);
  (* free = 2 and the request does NOT satisfy Fg (no receive guards):
     T6 nacks *)
  let junk i = (i, Wire.{ m_name = "req"; m_payload = [] }) in
  let st3 =
    {
      st1 with
      Async.h = { h with h_buf = [ junk 2; junk 3 ] };
    }
  in
  let st4 = fire ~k:4 prog st3 (by_rule ~actor:1 Async.H_T6) in
  checkb "nacked" true (List.mem Wire.Nack st4.Async.to_r.(1));
  (* free = 2 and the request DOES satisfy the underlying state: T5 *)
  let e_guard_state = Prog.state_index prog.home "E" in
  let inv_guard =
    let s = prog.home.p_states.(Prog.state_index prog.home "I1") in
    match s.Prog.cs_sends with [ g ] -> g | _ -> assert false
  in
  ignore e_guard_state;
  let h5 =
    {
      st.Async.h with
      h_ctl = Prog.state_index prog.home "I1";
      h_mode =
        Async.Htrans
          {
            guard = inv_guard;
            peer = 0;
            scratch = Array.copy st.Async.h.h_env;
            await = `Ack;
          };
      h_buf = [ junk 2; junk 3 ];
    }
  in
  (* the owner variable is r0 by default; an LR from r0 satisfies I1 *)
  let lr = Wire.Req { m_name = "LR"; m_payload = [] } in
  let st5 =
    {
      st with
      Async.h = h5;
      to_h = (let a = Array.make 4 [] in a.(0) <- [ lr ]; a);
    }
  in
  (* note: r0 is the transient peer here, so an LR from r0 is T3; use a
     different owner to observe T5 — set o := r1 and send LR from r1 *)
  let o = Prog.var_index prog.home "o" in
  let env = Array.copy h5.h_env in
  env.(o) <- Value.Vrid 1;
  let h5 = { h5 with h_env = env } in
  let st5 =
    {
      st5 with
      Async.h = h5;
      to_h = (let a = Array.make 4 [] in a.(1) <- [ lr ]; a);
    }
  in
  let st6 = fire ~k:4 prog st5 (by_rule ~actor:1 ~subject:"LR" Async.H_T5) in
  checki "progress slot used" 3 (List.length st6.Async.h.h_buf)

(* Admission outside a transient: the progress buffer only admits a
   request that can complete a rendezvous now. *)
let progress_buffer_test () =
  let prog = compile ~n:3 Ccr_protocols.Lock_server.system in
  let st = Async.initial prog k2 in
  let work i st = fire prog st (by_rule ~actor:i ~subject:"work" Async.R_tau) in
  (* r0 acquires the lock *)
  let st = work 0 st in
  let st = fire prog st (by_rule ~actor:0 ~subject:"acq" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
  let st = fire prog st (by_rule ~actor:0 Async.H_C1_silent) in
  let st = fire prog st (by_rule ~actor:0 Async.H_reply_send) in
  let st = fire prog st (by_rule ~actor:0 Async.R_repl_recv) in
  checks "home locked" "L" (hctl_of prog st);
  (* r1's acq is admitted (free = 2 > 1) *)
  let st = work 1 st in
  let st = fire prog st (by_rule ~actor:1 ~subject:"acq" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
  (* r2's acq cannot use the progress slot: only rel from r0 matches L *)
  let st = work 2 st in
  let st = fire prog st (by_rule ~actor:2 ~subject:"acq" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:2 Async.H_nack_full) in
  checkb "r2 nacked" true (List.mem Wire.Nack st.Async.to_r.(2));
  let st = fire prog st (by_rule ~actor:2 Async.R_T2) in
  checkb "r2 will retry" true (st.Async.r.(2).r_mode = Async.Rcomm);
  (* r0's rel does satisfy L: progress-slot admission *)
  let st = fire prog st (by_rule ~actor:0 Async.R_tau) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"rel" Async.R_C1) in
  let st = fire prog st (by_rule ~actor:0 Async.H_admit_progress) in
  checki "both buffered" 2 (List.length st.Async.h.h_buf);
  (* and the lock moves on *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"rel" Async.H_C1) in
  checks "unlocked" "U" (hctl_of prog st)

(* The home rotates to its next output guard on a nack (row T2). *)
let rotation_test () =
  (* a home with two output guards: it probes its client, and on a nack
     tries the other one *)
  let open Dsl in
  let sys =
    system "rot"
      ~home:
        (process "h" ~vars:[ ("a", Value.Drid); ("b", Value.Drid) ] ~init:"U"
           [
             state "U"
               [
                 recv_any "a" "hello" [] ~goto:"U2";
               ];
             state "U2" [ recv_any "b" "hello" [] ~goto:"P" ];
             state "P"
               [
                 send_to (v "a") "pa" [] ~goto:"DONE";
                 send_to (v "b") "pb" [] ~goto:"DONE";
               ];
             state "DONE" [ recv_any "a" "bye" [] ~goto:"DONE" ];
           ])
      ~remote:
        (process "r" ~vars:[] ~init:"T"
           [
             state "T" [ send_home "hello" [] ~goto:"W" ];
             state "W"
               [
                 recv_home "pb" [] ~goto:"X";
                 tau "lose_interest" ~goto:"Y";
               ];
             state "X" [ send_home "bye" [] ~goto:"X2" ];
             state "X2" [ recv_home "never" [] ~goto:"X2" ];
             state "Y" [ recv_home "pb" [] ~goto:"X" ];
           ])
  in
  let prog = compile ~reqrep:false ~n:2 sys in
  let st = Async.initial prog k2 in
  (* both remotes say hello; the home moves to P with a=first, b=second *)
  let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
  let st = fire prog st (by_rule ~actor:0 Async.H_admit) in
  let st = fire prog st (by_rule ~actor:0 Async.H_C1) in
  let st = fire prog st (by_rule ~actor:0 Async.R_T1) in
  let st = fire prog st (by_rule ~actor:1 Async.R_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.H_admit) in
  let st = fire prog st (by_rule ~actor:1 Async.H_C1) in
  let st = fire prog st (by_rule ~actor:1 Async.R_T1) in
  checks "home at P" "P" (hctl_of prog st);
  checki "rotation starts at 0" 0 st.Async.h.h_rot;
  (* first attempt: pa to r0 — but r0 only accepts pb: explicit nack *)
  let st = fire prog st (by_rule ~actor:0 ~subject:"pa" Async.H_C2) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"pa" Async.R_deliver) in
  let st = fire prog st (by_rule ~actor:0 ~subject:"pa" Async.R_C3_nack) in
  let st = fire prog st (by_rule ~actor:0 Async.H_T2) in
  checki "rotation advanced" 1 st.Async.h.h_rot;
  (* the retry goes to the NEXT guard: pb to r1 *)
  let st = fire prog st (by_rule ~actor:1 ~subject:"pb" Async.H_C2) in
  checkb "now probing r1" true
    (match st.Async.h.h_mode with
    | Async.Htrans { peer = 1; _ } -> true
    | _ -> false)

(* ---- whole-space checks ------------------------------------------------ *)

let coverage prog ?(k = 2) () =
  let cfg = Async.{ k } in
  let seen = Hashtbl.create 64 in
  let fired = Hashtbl.create 64 in
  let q = Queue.create () in
  let push st =
    let key = Async.encode st in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.push st q
    end
  in
  push (Async.initial prog cfg);
  while not (Queue.is_empty q) do
    let st = Queue.pop q in
    List.iter
      (fun ((l : Async.label), st') ->
        Hashtbl.replace fired l.rule ();
        push st')
      (Async.successors prog cfg st)
  done;
  List.filter (Hashtbl.mem fired) Async.all_rules
  |> List.map Async.rule_name

let tests =
  [
    case "optimized grant walkthrough" (fun () ->
        ignore (optimized_grant_walkthrough ()));
    case "generic grant walkthrough" (fun () ->
        ignore (generic_grant_walkthrough ()));
    case "crossing LR/inv race (implicit nack)" (fun () ->
        ignore (crossing_walkthrough ()));
    case "transient remote ignores home requests" (fun () ->
        ignore (ignore_walkthrough ()));
    case "home-initiated request/reply pair" (fun () ->
        ignore (inv_id_walkthrough ()));
    case "row C2 eviction nacks the oldest request" eviction_test;
    case "rows T4/T5/T6 admission while transient" transient_admission_test;
    case "progress buffer admission" progress_buffer_test;
    case "rotation over output guards (row T2)" rotation_test;
    case "rule coverage: optimized migratory" (fun () ->
        let rules = coverage (mig 3) () in
        List.iter
          (fun r ->
            checkb (r ^ " fired") true (List.mem r rules))
          [
            "R-C1"; "R-C2"; "R-C3-silent"; "R-T2"; "R-T3"; "R-reply-send";
            "R-repl-recv"; "R-deliver"; "H-C1"; "H-C1-silent"; "H-C2";
            "H-T1-repl"; "H-T3"; "H-reply-send"; "H-admit";
            "H-admit-progress"; "H-nack-full";
          ])
      ;
    case "rule coverage: generic migratory" (fun () ->
        let rules = coverage (mig_generic 3) () in
        List.iter
          (fun r -> checkb (r ^ " fired") true (List.mem r rules))
          (* R-C3-nack needs a home request that finds no matching guard;
             migratory remotes always match (see the rotation test for the
             nack path).  H-T4 needs free > 2, impossible at k = 2 (see
             the admission test). *)
          [
            "R-C1"; "R-C2"; "R-C3-ack"; "R-T1"; "R-T2"; "R-T3";
            "H-C1"; "H-C2"; "H-T1"; "H-T3";
          ]);
    case "async state counts are stable" (fun () ->
        let counts =
          List.map (fun n -> (explore_async (mig n)).states) [ 1; 2; 3 ]
        in
        Alcotest.(check (list int))
          "migratory async" Expected_counts.migratory_as counts;
        let counts =
          List.map
            (fun n -> (explore_async (mig_generic n)).states)
            [ 1; 2 ]
        in
        Alcotest.(check (list int))
          "generic" Expected_counts.migratory_generic_as counts;
        let counts =
          List.map
            (fun n ->
              (explore_async (Ccr_protocols.Migratory_hand.prog ~n ())).states)
            [ 1; 2 ]
        in
        Alcotest.(check (list int))
          "hand" Expected_counts.migratory_hand_as counts);
    case "no deadlock, no protocol error (whole spaces)" (fun () ->
        List.iter
          (fun prog -> assert_complete prog.Prog.t_name (explore_async prog))
          [
            mig 3;
            mig_generic 2;
            compile ~n:2 (Ccr_protocols.Migratory.system ~with_data:true ());
            compile ~n:2 Ccr_protocols.Invalidate.system;
            compile ~n:3 Ccr_protocols.Lock_server.system;
            Ccr_protocols.Migratory_hand.prog ~n:2 ();
            compile ~n:2 ping_system;
            compile ~n:2 plain_system;
            compile ~reqrep:false ~n:2 plain_system;
          ]);
    case "deadlock-freedom holds for larger k" (fun () ->
        List.iter
          (fun k -> assert_complete "mig k" (explore_async ~k (mig 2)))
          [ 3; 4; 6 ]);
    case "messages in flight stay bounded" (fun () ->
        let prog = mig 3 in
        let cfg = k2 in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let maxf = ref 0 in
        let push st =
          let key = Async.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            maxf := max !maxf (Async.messages_in_flight st);
            Queue.push st q
          end
        in
        push (Async.initial prog cfg);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter (fun (_, st') -> push st') (Async.successors prog cfg st)
        done;
        checkb "bounded by 2 per remote + grants" true (!maxf <= 2 * 3));
    case "encode injective across reachable async states" (fun () ->
        let prog = mig 2 in
        let cfg = k2 in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let push st =
          let key = Async.encode st in
          match Hashtbl.find_opt seen key with
          | Some repr ->
            checks "collision" repr (Fmt.str "%a" (Async.pp_state prog) st)
          | None ->
            Hashtbl.add seen key (Fmt.str "%a" (Async.pp_state prog) st);
            Queue.push st q
        in
        push (Async.initial prog cfg);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter (fun (_, st') -> push st') (Async.successors prog cfg st)
        done);
    case "buffers below k = 2 are rejected" (fun () ->
        checkb "raises" true
          (match Async.initial (mig 2) Async.{ k = 1 } with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "fire-and-forget LR is always admitted" (fun () ->
        let prog = Ccr_protocols.Migratory_hand.prog ~n:3 () in
        (* craft: home transient, regular buffer full, LR arrives: admitted
           beyond k *)
        let st = Async.initial prog k2 in
        let junk i = (i, Wire.{ m_name = "req"; m_payload = [] }) in
        let inv_guard =
          let s = prog.Prog.home.p_states.(Prog.state_index prog.home "I1") in
          match s.Prog.cs_sends with [ g ] -> g | _ -> assert false
        in
        let env = Array.copy st.Async.h.h_env in
        env.(Prog.var_index prog.home "o") <- Value.Vrid 0;
        let h =
          {
            st.Async.h with
            h_ctl = Prog.state_index prog.home "I1";
            h_env = env;
            h_mode =
              Async.Htrans
                {
                  guard = inv_guard;
                  peer = 0;
                  scratch = Array.copy env;
                  await = `Repl "ID";
                };
            h_buf = [ junk 1; junk 2 ];
          }
        in
        let lr = Wire.Req { m_name = "LR"; m_payload = [] } in
        let st =
          {
            st with
            Async.h;
            to_h = (let a = Array.make 3 [] in a.(1) <- [ lr ]; a);
          }
        in
        let st' = fire prog st (by_rule ~actor:1 ~subject:"LR" Async.H_T4) in
        checki "admitted beyond k" 3 (List.length st'.Async.h.h_buf));
  ]

let suite = ("async", tests)
