open Ccr_core
open Ccr_protocols
open Test_util
module Runtime = Ccr_runtime.Runtime
module Channel = Ccr_runtime.Channel

let k2 = Ccr_refine.Async.{ k = 2 }

let assert_clean name (s : Runtime.stats) =
  if not s.quiescent then
    Alcotest.failf "%s: did not reach quiescence (%a)" name Runtime.pp_stats s;
  if s.protocol_errors <> [] then
    Alcotest.failf "%s: protocol errors: %s" name
      (String.concat "; " s.protocol_errors);
  if s.invariant_failures <> [] then
    Alcotest.failf "%s: final-state invariants failed: %s" name
      (String.concat ", " s.invariant_failures)

let tests =
  [
    case "channel is FIFO with peek semantics" (fun () ->
        let c = Channel.create () in
        checkb "empty" true (Channel.is_empty c);
        Channel.send c 1;
        Channel.send c 2;
        checki "length" 2 (Channel.length c);
        checkb "peek oldest" true (Channel.peek c = Some 1);
        checkb "peek does not consume" true (Channel.peek c = Some 1);
        checkb "pop oldest" true (Channel.pop c = Some 1);
        checkb "then next" true (Channel.pop c = Some 2);
        checkb "then empty" true (Channel.pop c = None));
    case "channel survives concurrent producers and one consumer" (fun () ->
        let c = Channel.create () in
        let producers =
          List.init 4 (fun p ->
              Thread.create
                (fun () ->
                  for i = 0 to 249 do
                    Channel.send c ((p * 1000) + i)
                  done)
                ())
        in
        List.iter Thread.join producers;
        let seen = ref [] in
        let rec drain () =
          match Channel.pop c with
          | Some x ->
            seen := x :: !seen;
            drain ()
          | None -> ()
        in
        drain ();
        checki "all received" 1000 (List.length !seen);
        (* per-producer order is preserved *)
        List.iter
          (fun p ->
            let mine =
              List.rev (List.filter (fun x -> x / 1000 = p) !seen)
            in
            checkb "in order" true (List.sort compare mine = mine))
          [ 0; 1; 2; 3 ]);
    case "migratory runs concurrently and ends coherent" (fun () ->
        let prog = Link.compile ~n:4 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Migratory.async_invariants prog)
            prog k2
        in
        assert_clean "migratory" s;
        checkb "work happened" true (s.rendezvous > 4 * 50 / 2));
    case "invalidate runs concurrently and ends coherent" (fun () ->
        let prog = Link.compile ~n:3 Invalidate.system in
        let s =
          Runtime.run ~budget:60
            ~invariants:(Invalidate.async_invariants prog)
            prog k2
        in
        assert_clean "invalidate" s);
    case "lock server: mutual exclusion end to end" (fun () ->
        let prog = Link.compile ~n:4 Lock_server.system in
        let s =
          Runtime.run ~budget:40
            ~invariants:(Lock_server.async_invariants prog)
            prog k2
        in
        assert_clean "lock" s;
        (* every budgeted cycle acquires and releases: two rendezvous *)
        checkb "completions per remote" true
          (Array.for_all (fun c -> c >= 40) s.completions));
    case "barrier: equal budgets synchronize to quiescence" (fun () ->
        let prog = Link.compile ~n:3 Barrier.system in
        let s =
          Runtime.run ~budget:30
            ~invariants:(Barrier.async_invariants prog)
            prog k2
        in
        assert_clean "barrier" s;
        (* every remote completes one arrive and one go per round *)
        Array.iter (fun c -> checki "rounds" 60 c) s.completions);
    case "mesi under real concurrency" (fun () ->
        let prog = Link.compile ~n:3 Mesi.system in
        let s =
          Runtime.run ~budget:50 ~invariants:(Mesi.async_invariants prog)
            prog k2
        in
        assert_clean "mesi" s);
    case "write-update under real concurrency" (fun () ->
        let prog = Link.compile ~n:3 Write_update.system in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Write_update.async_invariants prog)
            prog k2
        in
        assert_clean "write-update" s);
    case "hand-optimized migratory under real concurrency" (fun () ->
        let prog = Migratory_hand.prog ~n:3 () in
        let s =
          Runtime.run ~budget:50
            ~invariants:(Migratory_hand.async_invariants prog)
            prog k2
        in
        assert_clean "hand" s);
    case "bigger buffers work too" (fun () ->
        let prog = Link.compile ~n:4 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:40
            ~invariants:(Migratory.async_invariants prog)
            prog Ccr_refine.Async.{ k = 4 }
        in
        assert_clean "k=4" s);
    case "workload budget bounds the run" (fun () ->
        (* thread interleavings vary, but the budget caps the work: a
           migratory cycle completes at most four rendezvous (request +
           grant + revoke + done), so two remotes with 25 cycles each can
           never exceed 4 * 2 * 25 *)
        let prog = Link.compile ~n:2 (Migratory.system ()) in
        let s =
          Runtime.run ~budget:25
            ~invariants:(Migratory.async_invariants prog)
            prog k2
        in
        assert_clean "bounds" s;
        checkb "not more rendezvous than cycles allow" true
          (s.rendezvous <= 4 * 2 * 25);
        checkb "and real work happened" true (s.rendezvous >= 25));
  ]

let suite = ("runtime", tests)
