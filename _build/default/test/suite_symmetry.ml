open Ccr_core
open Ccr_semantics
open Ccr_refine
open Test_util

let k2 = Async.{ k = 2 }
let mig n = compile ~n (Ccr_protocols.Migratory.system ())

let explore_with encode succ init =
  Ccr_modelcheck.Explore.run
    Ccr_modelcheck.Explore.{ init; succ; encode }
  |> fun (r : (_, _) Ccr_modelcheck.Explore.stats) -> (r.states, r.outcome)

let rv_quotient prog =
  explore_with
    (Symmetry.canonical_rv prog)
    (Rendezvous.successors prog)
    (Rendezvous.initial prog)

let rv_exact prog =
  explore_with Rendezvous.encode (Rendezvous.successors prog)
    (Rendezvous.initial prog)

let async_quotient ?(k = 2) prog =
  explore_with
    (Symmetry.canonical_async prog)
    (Async.successors prog Async.{ k })
    (Async.initial prog Async.{ k })

let async_exact ?(k = 2) prog =
  explore_with Async.encode
    (Async.successors prog Async.{ k })
    (Async.initial prog Async.{ k })

let identity n = Array.init n Fun.id
let swap01 n =
  let p = Array.init n Fun.id in
  p.(0) <- 1;
  p.(1) <- 0;
  p

let tests =
  [
    case "permuting with the identity is the identity" (fun () ->
        let prog = mig 3 in
        let st = Async.initial prog k2 in
        let st = fire prog st (by_rule ~actor:1 Async.R_C1) in
        let st' = Symmetry.permute_async prog (identity 3) st in
        checks "same" (Async.encode st) (Async.encode st'));
    case "permutation renames consistently" (fun () ->
        let prog = mig 2 in
        let st = Async.initial prog k2 in
        (* r0 requests; swapping 0<->1 must move the request to r1 *)
        let st = fire prog st (by_rule ~actor:0 Async.R_C1) in
        let st' = Symmetry.permute_async prog (swap01 2) st in
        checkb "r1 now waits" true
          (match st'.Async.r.(1).r_mode with
          | Async.Rwait _ -> true
          | _ -> false);
        checkb "r0 now idle" true (st'.Async.r.(0).r_mode = Async.Rcomm);
        checki "channel moved" 1 (List.length st'.Async.to_h.(1));
        checki "old channel empty" 0 (List.length st'.Async.to_h.(0)));
    case "permutation renames directory variables and sets" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Invalidate.system in
        let st = Rendezvous.initial prog in
        let sh = Prog.var_index prog.home "sh" in
        let env = Array.copy st.Rendezvous.h.env in
        env.(sh) <- Value.set_of_list [ 0; 2 ];
        let st = { st with Rendezvous.h = { st.Rendezvous.h with env } } in
        let p = [| 1; 0; 2 |] in
        let st' = Symmetry.permute_rv prog p st in
        checkb "set renamed" true
          (Value.equal
             st'.Rendezvous.h.env.(sh)
             (Value.set_of_list [ 1; 2 ])));
    case "canonical encoding is permutation-invariant" (fun () ->
        let prog = mig 3 in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let budget = ref 500 in
        let push st =
          let key = Async.encode st in
          if (not (Hashtbl.mem seen key)) && !budget > 0 then begin
            decr budget;
            Hashtbl.add seen key st;
            Queue.push st q
          end
        in
        push (Async.initial prog k2);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          (* every permutation of the state canonicalizes identically *)
          let c = Symmetry.canonical_async prog st in
          List.iter
            (fun p ->
              checks "invariant" c
                (Symmetry.canonical_async prog
                   (Symmetry.permute_async prog (Array.of_list p) st)))
            [ [ 1; 0; 2 ]; [ 2; 1; 0 ]; [ 1; 2; 0 ] ];
          List.iter (fun (_, s) -> push s) (Async.successors prog k2 st)
        done);
    case "quotient counts sit between exact/n! and exact" (fun () ->
        let rec fact = function 0 | 1 -> 1 | k -> k * fact (k - 1) in
        List.iter
          (fun n ->
            let prog = mig n in
            let exact, _ = rv_exact prog in
            let quotient, _ = rv_quotient prog in
            checkb "reduced" true (quotient <= exact);
            checkb "not over-reduced" true (quotient * fact n >= exact))
          [ 2; 3; 4 ]);
    case "quotient preserves invariants and deadlock-freedom" (fun () ->
        let prog = mig 3 in
        let r =
          Ccr_modelcheck.Explore.run ~check_deadlock:true
            ~invariants:(Ccr_protocols.Migratory.async_invariants prog)
            Ccr_modelcheck.Explore.
              {
                init = Async.initial prog k2;
                succ = Async.successors prog k2;
                encode = Symmetry.canonical_async prog;
              }
        in
        checkb "complete" true (outcome_complete r.outcome));
    case "async quotient reduction factor grows with n" (fun () ->
        let e2, _ = async_exact (mig 2) in
        let q2, _ = async_quotient (mig 2) in
        let e3, _ = async_exact (mig 3) in
        let q3, _ = async_quotient (mig 3) in
        let f2 = float_of_int e2 /. float_of_int q2 in
        let f3 = float_of_int e3 /. float_of_int q3 in
        checkb "reduces at n=2" true (f2 > 1.5);
        checkb "reduces more at n=3" true (f3 > f2));
    case "beyond max_fact the encoding falls back soundly" (fun () ->
        let prog = mig 3 in
        let st = Async.initial prog k2 in
        checks "identity fallback"
          (Async.encode st)
          (Symmetry.canonical_async ~max_fact:2 prog st));
  ]

let suite = ("symmetry", tests)
