(* Exact reachable-state counts used as regression anchors.

   These pin down the semantics: any change to the rendezvous executor,
   the refinement rules (Tables 1-2), the request/reply optimization or
   the buffer machinery shifts them.  Recorded from the implementation
   once its invariants, Eq. 1 checks and scaling shape were validated;
   they are anchors for the Table 3 reproduction, not the paper's SPIN
   numbers (a different checker encodes states differently). *)

(* n = 1, 2, 4 *)
let migratory_rv = [ 4; 15; 61 ]

(* n = 1, 2, 3; k = 2 *)
let migratory_as = [ 10; 129; 1650 ]

(* n = 1, 2, 3 *)
let invalidate_rv = [ 9; 92; 647 ]

(* n = 1, 2; k = 2 *)
let invalidate_as = [ 21; 604 ]

(* n = 1, 2, 3 *)
let lock_rv = [ 5; 16; 44 ]

(* n = 1, 2, 3; k = 2 *)
let lock_as = [ 11; 108; 859 ]

(* n = 1, 2; k = 2; generic scheme (no request/reply pairs) *)
let migratory_generic_as = [ 16; 383 ]

(* n = 1, 2; k = 2; hand-optimized (unacked LR) *)
let migratory_hand_as = [ 14; 366 ]
