open Ccr_core
open Ccr_protocols
open Test_util

let check_both name sys ~rv_inv ~as_inv ns =
  List.iter
    (fun n ->
      let prog = compile ~n sys in
      assert_complete
        (Fmt.str "%s rv n=%d" name n)
        (explore_rv ~invariants:(rv_inv prog) prog);
      assert_complete
        (Fmt.str "%s async n=%d" name n)
        (explore_async ~invariants:(as_inv prog) prog))
    ns

let tests =
  [
    case "migratory coherence, both levels" (fun () ->
        check_both "migratory" (Migratory.system ())
          ~rv_inv:Migratory.rv_invariants ~as_inv:Migratory.async_invariants
          [ 1; 2; 3 ]);
    case "migratory with data, both levels" (fun () ->
        check_both "migratory-data"
          (Migratory.system ~with_data:true ())
          ~rv_inv:Migratory.rv_invariants ~as_inv:Migratory.async_invariants
          [ 1; 2 ]);
    case "migratory generic scheme keeps coherence" (fun () ->
        List.iter
          (fun n ->
            let prog = compile ~reqrep:false ~n (Migratory.system ()) in
            assert_complete "generic"
              (explore_async ~invariants:(Migratory.async_invariants prog) prog))
          [ 1; 2; 3 ]);
    case "invalidate coherence, both levels" (fun () ->
        check_both "invalidate" Invalidate.system
          ~rv_inv:Invalidate.rv_invariants ~as_inv:Invalidate.async_invariants
          [ 1; 2 ]);
    slow_case "invalidate coherence at n=3" (fun () ->
        check_both "invalidate" Invalidate.system
          ~rv_inv:Invalidate.rv_invariants ~as_inv:Invalidate.async_invariants
          [ 3 ]);
    case "lock server mutual exclusion, both levels" (fun () ->
        check_both "lock" Lock_server.system ~rv_inv:Lock_server.rv_invariants
          ~as_inv:Lock_server.async_invariants [ 1; 2; 3 ]);
    case "hand-optimized migratory keeps coherence" (fun () ->
        List.iter
          (fun n ->
            let prog = Migratory_hand.prog ~n () in
            assert_complete "hand"
              (explore_async
                 ~invariants:(Migratory_hand.async_invariants prog)
                 prog))
          [ 1; 2; 3 ]);
    case "invalidate rendezvous counts are stable" (fun () ->
        let counts =
          List.map
            (fun n -> (explore_rv (compile ~n Invalidate.system)).states)
            [ 1; 2; 3 ]
        in
        Alcotest.(check (list int))
          "invalidate rv" Expected_counts.invalidate_rv counts;
        let counts =
          List.map
            (fun n -> (explore_async (compile ~n Invalidate.system)).states)
            [ 1; 2 ]
        in
        Alcotest.(check (list int))
          "invalidate async" Expected_counts.invalidate_as counts);
    case "lock counts are stable" (fun () ->
        let counts =
          List.map
            (fun n -> (explore_rv (compile ~n Lock_server.system)).states)
            [ 1; 2; 3 ]
        in
        Alcotest.(check (list int)) "lock rv" Expected_counts.lock_rv counts;
        let counts =
          List.map
            (fun n -> (explore_async (compile ~n Lock_server.system)).states)
            [ 1; 2; 3 ]
        in
        Alcotest.(check (list int)) "lock async" Expected_counts.lock_as counts);
    case "barrier synchronization, both levels" (fun () ->
        check_both "barrier" Barrier.system ~rv_inv:Barrier.rv_invariants
          ~as_inv:Barrier.async_invariants [ 1; 2; 3 ]);
    case "barrier uses the generic scheme (no pairs)" (fun () ->
        let r = Reqrep.analyze Barrier.system in
        checkb "no pairs" true (r.pairs = []);
        checkb "arrive rejected with a reason" true
          (List.mem_assoc "arrive" r.rejected));
    case "barrier Eq. 1" (fun () ->
        let prog = compile ~n:2 Barrier.system in
        let v =
          Ccr_refine.Absmap.check_eq1 prog Ccr_refine.Async.{ k = 2 }
        in
        checkb "ok" true v.ok);
    case "mesi coherence, both levels" (fun () ->
        check_both "mesi" Mesi.system ~rv_inv:Mesi.rv_invariants
          ~as_inv:Mesi.async_invariants [ 1; 2 ]);
    case "mesi finds four request/reply pairs" (fun () ->
        let r = Reqrep.analyze Mesi.system in
        let names =
          List.map (fun (p : Reqrep.pair) -> (p.req, p.repl)) r.pairs
          |> List.sort compare
        in
        checkb "pairs" true
          (names
          = [
              ("down", "dAck"); ("inv", "ID"); ("reqM", "grM");
              ("reqS", "grS");
            ]));
    case "mesi: the silent upgrade is reachable and message-free" (fun () ->
        (* find a state with a remote in M while the home never saw a
           reqM or an invalidation — it got there from E by a tau *)
        let prog = compile ~n:2 Mesi.system in
        let cfg = Ccr_refine.Async.{ k = 2 } in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let found = ref false in
        let push st =
          let key = Ccr_refine.Async.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            Queue.push st q
          end
        in
        push (Ccr_refine.Async.initial prog cfg);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter
            (fun ((l : Ccr_refine.Async.label), st') ->
              if
                l.rule = Ccr_refine.Async.R_tau && l.subject = "write_hit"
              then begin
                found := true;
                (* no message was emitted by the upgrade *)
                checki "in-flight unchanged"
                  (Ccr_refine.Async.messages_in_flight st)
                  (Ccr_refine.Async.messages_in_flight st')
              end;
              push st')
            (Ccr_refine.Async.successors prog cfg st)
        done;
        checkb "upgrade reachable" true !found);
    case "write-update coherence, both levels" (fun () ->
        check_both "write-update" Write_update.system
          ~rv_inv:Write_update.rv_invariants
          ~as_inv:Write_update.async_invariants [ 1; 2 ]);
    case "write-update: concurrent writers serialize" (fun () ->
        (* both remotes write from S; the deferred-writer set must admit
           both and the system must converge (no deadlock is already part
           of explore); additionally, a state with both writers pending
           must be reachable *)
        let prog = compile ~n:2 Write_update.system in
        let cfg = Ccr_refine.Async.{ k = 2 } in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let found = ref false in
        let pend = Prog.var_index prog.home "pend" in
        let push st =
          let key = Ccr_refine.Async.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            (match st.Ccr_refine.Async.h.h_env.(pend) with
            | Value.Vset m when m <> 0 ->
              if
                Value.set_cardinal (Value.Vset m)
                + (if
                     Props.as_home_in prog
                       [ "Upd"; "UW"; "UD"; "WAck"; "UpdOrAck" ] st
                   then 1
                   else 0)
                >= 2
              then found := true
            | _ -> ());
            Queue.push st q
          end
        in
        push (Ccr_refine.Async.initial prog cfg);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter (fun (_, s) -> push s) (Ccr_refine.Async.successors prog cfg st)
        done;
        checkb "two writes in flight reachable" true !found);
    case "mesi and write-update Eq. 1" (fun () ->
        List.iter
          (fun sys ->
            let prog = compile ~n:2 sys in
            let v =
              Ccr_refine.Absmap.check_eq1 prog Ccr_refine.Async.{ k = 2 }
            in
            checkb "ok" true v.ok)
          [ Mesi.system; Write_update.system ]);
    case "registry lists every protocol consistently" (fun () ->
        checkb "nonempty" true (List.length Registry.all >= 6);
        List.iter
          (fun (e : Registry.t) ->
            checkb (e.name ^ " findable") true
              (match Registry.find e.name with
              | Some e' -> e'.Registry.name = e.name
              | None -> false);
            let prog = e.instantiate ~reqrep:true ~n:2 in
            checki (e.name ^ " instantiated at n") 2 prog.Prog.n;
            (* async invariants must at least run *)
            let r =
              explore_async ~invariants:(e.async_invariants prog)
                ~max_states:50_000 prog
            in
            checkb (e.name ^ " async clean") true
              (match r.outcome with
              | Ccr_modelcheck.Explore.Complete
              | Ccr_modelcheck.Explore.Limit _ ->
                true
              | _ -> false);
            match e.system with
            | None -> ()
            | Some sys -> (
              match Validate.check sys with
              | Ok _ -> ()
              | Error _ -> Alcotest.failf "%s fails validation" e.name))
          Registry.all;
        checkb "unknown not found" true (Option.is_none (Registry.find "nope")));
    case "a broken invariant is caught with a trace" (fun () ->
        (* sanity-check the harness itself: an impossible invariant must
           fail fast and carry a counterexample *)
        let prog = compile ~n:2 (Migratory.system ()) in
        let r =
          explore_async
            ~invariants:[ ("bogus", fun st -> st.Ccr_refine.Async.h.h_buf = []) ]
            prog
        in
        match (r.outcome, r.trace) with
        | Ccr_modelcheck.Explore.Violation { invariant = "bogus"; state }, Some _
          ->
          checkb "witness has a buffered request" true
            (state.Ccr_refine.Async.h.h_buf <> [])
        | _ -> Alcotest.fail "expected a bogus-invariant violation");
    case "invalidate can actually share" (fun () ->
        (* reachability sanity: two simultaneous sharers exist at n=2 *)
        let prog = compile ~n:2 Invalidate.system in
        let found = ref false in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let push st =
          let key = Ccr_semantics.Rendezvous.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            if Props.rv_remotes_in prog [ "S" ] st = 2 then found := true;
            Queue.push st q
          end
        in
        push (Ccr_semantics.Rendezvous.initial prog);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter
            (fun (_, s) -> push s)
            (Ccr_semantics.Rendezvous.successors prog st)
        done;
        checkb "two sharers reachable" true !found);
    case "migratory-data: foreign data reaches a reader" (fun () ->
        (* the line's value written by r1 must be observable at r0 *)
        let prog = compile ~n:2 (Migratory.system ~with_data:true ()) in
        let cfg = Ccr_refine.Async.{ k = 2 } in
        let found = ref false in
        let seen = Hashtbl.create 64 in
        let q = Queue.create () in
        let d = Prog.var_index prog.remote "d" in
        let push st =
          let key = Ccr_refine.Async.encode st in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            if
              Props.as_remote_ctl prog st 0 = "V"
              && Value.equal st.Ccr_refine.Async.r.(0).r_env.(d) (Value.Vrid 1)
            then found := true;
            Queue.push st q
          end
        in
        push (Ccr_refine.Async.initial prog cfg);
        while not (Queue.is_empty q) do
          let st = Queue.pop q in
          List.iter
            (fun (_, s) -> push s)
            (Ccr_refine.Async.successors prog cfg st)
        done;
        checkb "r0 sees r1's write" true !found);
  ]

let suite = ("protocols", tests)
