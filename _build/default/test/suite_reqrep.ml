open Ccr_core
open Test_util
open Dsl

let pairs_of sys =
  (Reqrep.analyze sys).pairs
  |> List.map (fun (p : Reqrep.pair) ->
         ( p.req,
           p.repl,
           match p.initiator with
           | Reqrep.Remote_initiated -> `R
           | Reqrep.Home_initiated -> `H ))
  |> List.sort compare

let tests =
  [
    case "migratory finds req/gr and inv/ID" (fun () ->
        checkb "pairs" true
          (pairs_of (Ccr_protocols.Migratory.system ())
          = [ ("inv", "ID", `H); ("req", "gr", `R) ]));
    case "migratory with data finds the same pairs" (fun () ->
        checkb "pairs" true
          (pairs_of (Ccr_protocols.Migratory.system ~with_data:true ())
          = [ ("inv", "ID", `H); ("req", "gr", `R) ]));
    case "invalidate finds reqS/grS, reqM/grM and inv/ID" (fun () ->
        checkb "pairs" true
          (pairs_of Ccr_protocols.Invalidate.system
          = [ ("inv", "ID", `H); ("reqM", "grM", `R); ("reqS", "grS", `R) ]));
    case "lock server finds acq/grant" (fun () ->
        checkb "pairs" true
          (pairs_of Ccr_protocols.Lock_server.system
          = [ ("acq", "grant", `R) ]));
    case "LR is rejected (no immediate wait)" (fun () ->
        let r = Reqrep.analyze (Ccr_protocols.Migratory.system ()) in
        checkb "LR rejected" true (List.mem_assoc "LR" r.rejected));
    case "plain protocol has no pairs" (fun () ->
        (* the remote pauses (tau) between ask and the wait for tell, so
           the §3.3 side condition fails *)
        checkb "no pairs" true (pairs_of plain_system = []));
    case "ping finds acq/grant but not rel" (fun () ->
        checkb "pairs" true (pairs_of ping_system = [ ("acq", "grant", `R) ]));
    case "detour breaks the pair: home interacts with requester" (fun () ->
        (* home sends a probe to the requester before replying *)
        let home =
          process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
            [
              state "U" [ recv_any "c" "acq" [] ~goto:"P" ];
              state "P" [ send_to (v "c") "probe" [] ~goto:"PW" ];
              state "PW" [ recv_from (v "c") "probeAck" [] ~goto:"G" ];
              state "G" [ send_to (v "c") "grant" [] ~goto:"U" ];
            ]
        in
        let remote =
          process "r" ~vars:[] ~init:"T"
            [
              state "T" [ send_home "acq" [] ~goto:"W" ];
              state "W" [ recv_home "grant" [] ~goto:"T"
                        ; recv_home "probe" [] ~goto:"PA" ];
              state "PA" [ send_home "probeAck" [] ~goto:"W" ];
            ]
        in
        let sys = system "probe" ~home ~remote in
        (match Validate.check sys with
        | Ok _ -> ()
        | Error es ->
          Alcotest.failf "probe system invalid: %a"
            Fmt.(list ~sep:sp Validate.pp_error)
            es);
        let r = Reqrep.analyze sys in
        checkb "acq not a pair" true
          (not
             (List.exists
                (fun (p : Reqrep.pair) -> p.req = "acq")
                r.pairs)));
    case "conditional wait breaks the pair" (fun () ->
        let home =
          process "h" ~vars:[ ("c", Value.Drid); ("b", Value.Dbool) ] ~init:"U"
            [
              state "U" [ recv_any "c" "acq" [] ~goto:"G" ];
              state "G" [ send_to (v "c") "grant" [] ~goto:"U" ];
            ]
        in
        let remote =
          process "r" ~vars:[ ("b", Value.Dbool) ] ~init:"T"
            [
              state "T" [ send_home "acq" [] ~goto:"W" ];
              state "W"
                [
                  recv_home "grant" []
                    ~cond:(Expr.Eq (v "b", Expr.Const (Value.Vbool false)))
                    ~goto:"T";
                ];
            ]
        in
        let sys = system "condwait" ~home ~remote in
        let r = Reqrep.analyze sys in
        checkb "acq not a pair" true
          (not (List.exists (fun (p : Reqrep.pair) -> p.req = "acq") r.pairs)));
    case "home-initiated pair requires local-only continuation" (fun () ->
        (* after receiving inv the remote waits for another rendezvous
           before replying: not a pair *)
        let home =
          process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
            [
              state "U" [ recv_any "c" "hello" [] ~goto:"S" ];
              state "S" [ send_to (v "c") "inv" [] ~goto:"W" ];
              state "W" [ send_to (v "c") "nudge" [] ~goto:"W2" ];
              state "W2" [ recv_from (v "c") "ID" [] ~goto:"U" ];
            ]
        in
        let remote =
          process "r" ~vars:[] ~init:"T"
            [
              state "T" [ send_home "hello" [] ~goto:"V" ];
              state "V" [ recv_home "inv" [] ~goto:"X" ];
              state "X" [ recv_home "nudge" [] ~goto:"Y" ];
              state "Y" [ send_home "ID" [] ~goto:"T" ];
            ]
        in
        let sys = system "chatty" ~home ~remote in
        (match Validate.check sys with
        | Ok _ -> ()
        | Error es ->
          Alcotest.failf "chatty system invalid: %a"
            Fmt.(list ~sep:sp Validate.pp_error)
            es);
        let r = Reqrep.analyze sys in
        checkb "inv not a pair" true
          (not (List.exists (fun (p : Reqrep.pair) -> p.req = "inv") r.pairs)));
    case "alias tracking follows j := i" (fun () ->
        (* the home stores the requester in a second variable before
           replying: still a pair *)
        let home =
          process "h" ~vars:[ ("i", Value.Drid); ("j", Value.Drid) ] ~init:"U"
            [
              state "U"
                [ recv_any "i" "acq" [] ~assigns:[ ("j", v "i") ] ~goto:"G" ];
              state "G" [ send_to (v "j") "grant" [] ~goto:"U" ];
            ]
        in
        let remote =
          process "r" ~vars:[] ~init:"T"
            [
              state "T" [ send_home "acq" [] ~goto:"W" ];
              state "W" [ recv_home "grant" [] ~goto:"T" ];
            ]
        in
        let r = Reqrep.analyze (system "alias" ~home ~remote) in
        checkb "acq/grant found" true
          (List.exists
             (fun (p : Reqrep.pair) -> p.req = "acq" && p.repl = "grant")
             r.pairs));
    case "killed alias breaks the pair" (fun () ->
        (* the requester variable is overwritten before the reply *)
        let home =
          process "h" ~vars:[ ("i", Value.Drid) ] ~init:"U"
            [
              state "U" [ recv_any "i" "acq" [] ~goto:"K" ];
              state "K" [ tau "clobber" ~assigns:[ ("i", rid 0) ] ~goto:"G" ];
              state "G" [ send_to (v "i") "grant" [] ~goto:"U" ];
            ]
        in
        let remote =
          process "r" ~vars:[] ~init:"T"
            [
              state "T" [ send_home "acq" [] ~goto:"W" ];
              state "W" [ recv_home "grant" [] ~goto:"T" ];
            ]
        in
        let r = Reqrep.analyze (system "clobber" ~home ~remote) in
        checkb "acq rejected" true
          (not (List.exists (fun (p : Reqrep.pair) -> p.req = "acq") r.pairs)));
  ]

let suite = ("reqrep", tests)
