open Ccr_core
open Test_util

let value = Alcotest.testable Value.pp Value.equal

let env = [ ("x", Value.Vint 4); ("r", Value.Vrid 1); ("s", Value.Vset 0b110) ]

let lookup x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> raise (Expr.Eval_error ("unbound " ^ x))

let eval ?self e = Expr.eval ~lookup ~self e
let eval_b ?self b = Expr.eval_b ~lookup ~self b

let var_ty x =
  List.assoc_opt x
    [ ("x", Expr.Tint); ("r", Expr.Trid); ("s", Expr.Tset); ("u", Expr.Tunit) ]

let tests =
  [
    case "eval constants and vars" (fun () ->
        check value "const" (Value.Vint 7) (eval (Expr.Const (Value.Vint 7)));
        check value "var" (Value.Vint 4) (eval (Expr.Var "x"));
        check value "self" (Value.Vrid 3) (eval ~self:3 Expr.Self));
    case "self outside remote raises" (fun () ->
        Alcotest.check_raises "self" (Expr.Eval_error "Self used outside a remote process")
          (fun () -> ignore (eval Expr.Self)));
    case "unbound var raises" (fun () ->
        Alcotest.check_raises "unbound" (Expr.Eval_error "unbound zz") (fun () ->
            ignore (eval (Expr.Var "zz"))));
    case "set expressions" (fun () ->
        check value "add" (Value.Vset 0b111)
          (eval (Expr.Set_add (Expr.Var "s", Expr.Const (Value.Vrid 0))));
        check value "remove" (Value.Vset 0b100)
          (eval (Expr.Set_remove (Expr.Var "s", Expr.Var "r")));
        check value "singleton" (Value.Vset 0b10)
          (eval (Expr.Set_singleton (Expr.Var "r")));
        check value "succ" (Value.Vint 5) (eval (Expr.Succ (Expr.Var "x"))));
    case "set op on non-set raises" (fun () ->
        checkb "raises" true
          (match eval (Expr.Set_add (Expr.Var "x", Expr.Var "r")) with
          | exception Expr.Eval_error _ -> true
          | _ -> false));
    case "boolean expressions" (fun () ->
        checkb "true" true (eval_b Expr.True);
        checkb "not" false (eval_b (Expr.Not Expr.True));
        checkb "and" false (eval_b (Expr.And (Expr.True, Expr.Not Expr.True)));
        checkb "or" true (eval_b (Expr.Or (Expr.Not Expr.True, Expr.True)));
        checkb "eq" true
          (eval_b (Expr.Eq (Expr.Var "x", Expr.Const (Value.Vint 4))));
        checkb "mem" true (eval_b (Expr.Set_mem (Expr.Var "r", Expr.Var "s")));
        checkb "not mem" false
          (eval_b (Expr.Set_mem (Expr.Const (Value.Vrid 0), Expr.Var "s")));
        checkb "empty" false (eval_b (Expr.Set_is_empty (Expr.Var "s")));
        checkb "empty of {}" true
          (eval_b (Expr.Set_is_empty (Expr.Const Value.set_empty))));
    case "type inference accepts good terms" (fun () ->
        let ok e want =
          match Expr.infer ~var_ty ~in_remote:true e with
          | Ok ty -> checkb "ty" true (ty = want)
          | Error m -> Alcotest.failf "unexpected type error: %s" m
        in
        ok (Expr.Var "x") Expr.Tint;
        ok Expr.Self Expr.Trid;
        ok (Expr.Set_add (Expr.Var "s", Expr.Self)) Expr.Tset;
        ok (Expr.Succ (Expr.Var "x")) Expr.Tint);
    case "type inference rejects bad terms" (fun () ->
        let bad e =
          match Expr.infer ~var_ty ~in_remote:false e with
          | Ok _ -> Alcotest.fail "expected type error"
          | Error _ -> ()
        in
        bad Expr.Self;
        bad (Expr.Var "zz");
        bad (Expr.Set_add (Expr.Var "x", Expr.Var "r"));
        bad (Expr.Succ (Expr.Var "r")));
    case "boolean checking" (fun () ->
        checkb "good" true
          (Expr.check_b ~var_ty ~in_remote:false
             (Expr.Eq (Expr.Var "x", Expr.Const (Value.Vint 0)))
          = Ok ());
        checkb "mismatched eq" true
          (match
             Expr.check_b ~var_ty ~in_remote:false
               (Expr.Eq (Expr.Var "x", Expr.Var "r"))
           with
          | Error _ -> true
          | Ok () -> false));
    case "vars collection" (fun () ->
        Alcotest.(check (list string))
          "expr vars" [ "s"; "r" ]
          (Expr.vars (Expr.Set_add (Expr.Var "s", Expr.Var "r")));
        Alcotest.(check (list string))
          "dedup" [ "x" ]
          (Expr.vars (Expr.Set_add (Expr.Var "x", Expr.Var "x")));
        Alcotest.(check (list string))
          "bexpr vars" [ "r"; "s" ]
          (Expr.vars_b (Expr.Set_mem (Expr.Var "r", Expr.Var "s"))));
  ]

let suite = ("expr", tests)
