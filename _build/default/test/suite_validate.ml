open Ccr_core
open Test_util
open Dsl

(* A minimal valid system to mutate. *)
let base_home =
  process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
    [
      state "U" [ recv_any "c" "m" [] ~goto:"G" ];
      state "G" [ send_to (v "c") "g" [] ~goto:"U" ];
    ]

let base_remote =
  process "r" ~vars:[] ~init:"T"
    [
      state "T" [ send_home "m" [] ~goto:"W" ];
      state "W" [ recv_home "g" [] ~goto:"T" ];
    ]

let base = system "base" ~home:base_home ~remote:base_remote

let assert_ok sys =
  match Validate.check sys with
  | Ok _ -> ()
  | Error es ->
    Alcotest.failf "expected valid, got: %a"
      Fmt.(list ~sep:sp Validate.pp_error)
      es

let assert_error ~containing sys =
  match Validate.check sys with
  | Ok _ -> Alcotest.failf "expected a validation error (%s)" containing
  | Error es ->
    let all = Fmt.str "%a" Fmt.(list ~sep:sp Validate.pp_error) es in
    if not (contains_sub ~sub:containing all) then
      Alcotest.failf "error %S does not mention %S" all containing

let with_home h = { base with Ir.home = h }
let with_remote r = { base with Ir.remote = r }

let tests =
  [
    case "base system validates" (fun () -> assert_ok base);
    case "all protocol-library systems validate" (fun () ->
        assert_ok (Ccr_protocols.Migratory.system ());
        assert_ok (Ccr_protocols.Migratory.system ~with_data:true ());
        assert_ok Ccr_protocols.Invalidate.system;
        assert_ok Ccr_protocols.Lock_server.system;
        assert_ok ping_system;
        assert_ok plain_system);
    case "signatures are collected" (fun () ->
        let sigs = Validate.check_exn base in
        checki "two messages" 2 (List.length sigs);
        let m = List.find (fun s -> s.Validate.msg = "m") sigs in
        checkb "direction" true (m.direction = Validate.Remote_to_home);
        checki "arity" 0 (List.length m.payload));
    case "unknown initial state" (fun () ->
        assert_error ~containing:"initial state"
          (with_home { base_home with Ir.p_init_state = "ZZ" }));
    case "duplicate state names" (fun () ->
        assert_error ~containing:"duplicate state"
          (with_home
             {
               base_home with
               Ir.p_states = base_home.Ir.p_states @ [ state "U" [] ];
             }));
    case "duplicate variables" (fun () ->
        assert_error ~containing:"duplicate variable"
          (with_home
             {
               base_home with
               Ir.p_vars = [ ("c", Value.Drid); ("c", Value.Dbool) ];
             }));
    case "unknown guard target" (fun () ->
        assert_error ~containing:"target state"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [ state "T" [ send_home "m" [] ~goto:"NOPE" ] ])));
    case "undeclared assignment" (fun () ->
        assert_error ~containing:"undeclared"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [
                  state "T"
                    [ send_home "m" [] ~assigns:[ ("zz", int 0) ] ~goto:"T" ];
                ])));
    case "wrong initial value type" (fun () ->
        assert_error ~containing:"initial value"
          (with_home
             { base_home with Ir.p_init_env = [ ("c", Value.Vint 3) ] }));
    case "initial value for unknown variable" (fun () ->
        assert_error ~containing:"undeclared"
          (with_home
             { base_home with Ir.p_init_env = [ ("zz", Value.Vint 3) ] }));
    case "star topology: remote to remote" (fun () ->
        assert_error ~containing:"star"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [ state "T" [ send_to (rid 0) "m" [] ~goto:"T" ] ])));
    case "star topology: home to home" (fun () ->
        assert_error ~containing:"home cannot send to home"
          (with_home
             (process "h" ~vars:[] ~init:"U"
                [ state "U" [ send_home "m" [] ~goto:"U" ] ])));
    case "remote receives from remote" (fun () ->
        assert_error ~containing:"cannot receive"
          (with_remote
             (process "r" ~vars:[ ("i", Value.Drid) ] ~init:"T"
                [ state "T" [ recv_any "i" "m" [] ~goto:"T" ] ])));
    case "remote active state must be alone" (fun () ->
        assert_error ~containing:"single output"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [
                  state "T"
                    [
                      send_home "m" [] ~goto:"W"; tau "oops" ~goto:"T";
                    ];
                  state "W" [ recv_home "g" [] ~goto:"T" ];
                ])));
    case "remote cannot offer two outputs" (fun () ->
        assert_error ~containing:"output guards"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [
                  state "T"
                    [ send_home "m" [] ~goto:"W"; send_home "m2" [] ~goto:"W" ];
                  state "W" [ recv_home "g" [] ~goto:"T" ];
                ])));
    case "home cannot mix tau with communication" (fun () ->
        assert_error ~containing:"mixes internal"
          (with_home
             (process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
                [
                  state "U"
                    [ recv_any "c" "m" [] ~goto:"U"; tau "oops" ~goto:"U" ];
                ])));
    case "internal cycle rejected" (fun () ->
        assert_error ~containing:"cycle"
          (with_remote
             (process "r" ~vars:[] ~init:"A"
                [
                  state "A" [ tau "x" ~goto:"B" ];
                  state "B" [ tau "y" ~goto:"A" ];
                ])));
    case "internal path into comm state accepted" (fun () ->
        assert_ok
          (with_remote
             (process "r" ~vars:[] ~init:"A"
                [
                  state "A" [ tau "x" ~goto:"B" ];
                  state "B" [ tau "y" ~goto:"T" ];
                  state "T" [ send_home "m" [] ~goto:"W" ];
                  state "W" [ recv_home "g" [] ~goto:"A" ];
                ])));
    case "message arity must be consistent" (fun () ->
        assert_error ~containing:"payload"
          (with_remote
             (process "r" ~vars:[ ("d", Value.Drid) ] ~init:"T"
                [
                  state "T" [ send_home "m" [ v "d" ] ~goto:"W" ];
                  state "W" [ recv_home "g" [] ~goto:"T" ];
                ])));
    case "message direction must be consistent" (fun () ->
        (* remote also sends "g", which the home sends *)
        assert_error ~containing:"used both"
          (with_remote
             (process "r" ~vars:[] ~init:"T"
                [
                  state "T" [ send_home "m" [] ~goto:"W" ];
                  state "W" [ recv_home "g" [] ~goto:"X" ];
                  state "X" [ send_home "g" [] ~goto:"T" ];
                ])));
    case "choose binder must be rid over a set" (fun () ->
        assert_error ~containing:"choose binder"
          (with_home
             (process "h" ~vars:[ ("c", Value.Drid); ("s", Value.Dset) ]
                ~init:"U"
                [
                  state "U" [ recv_any "c" "m" [] ~goto:"G" ];
                  state "G"
                    [
                      send_to (v "c") "g" [] ~choose:[ ("s", v "s") ]
                        ~goto:"U";
                    ];
                ])));
    case "cond type errors are caught" (fun () ->
        assert_error ~containing:"condition"
          (with_home
             (process "h" ~vars:[ ("c", Value.Drid) ] ~init:"U"
                [
                  state "U"
                    [
                      recv_any "c" "m" []
                        ~cond:(Expr.Set_is_empty (v "c"))
                        ~goto:"G";
                    ];
                  state "G" [ send_to (v "c") "g" [] ~goto:"U" ];
                ])));
    case "check_exn raises on invalid" (fun () ->
        checkb "raises" true
          (match
             Validate.check_exn
               (with_home { base_home with Ir.p_init_state = "ZZ" })
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let suite = ("validate", tests)
