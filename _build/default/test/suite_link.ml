open Ccr_core
open Test_util

let mig () = Ccr_protocols.Migratory.system ()

let find_guard (proc : Prog.proc) ~st p =
  let s = proc.p_states.(Prog.state_index proc st) in
  let found = Array.to_list s.cs_guards |> List.filter p in
  match found with
  | [ g ] -> g
  | l -> Alcotest.failf "expected one matching guard in %s, found %d" st (List.length l)

let is_send_of m (g : Prog.cguard) =
  match g.cg_action with
  | Prog.C_send_home (m', _) | Prog.C_send_remote (_, m', _) -> m' = m
  | _ -> false

let is_recv_of m (g : Prog.cguard) =
  match g.cg_action with
  | Prog.C_recv_home (m', _) | Prog.C_recv_any (_, m', _)
  | Prog.C_recv_from (_, m', _) ->
    m' = m
  | _ -> false

let tests =
  [
    case "n must be positive" (fun () ->
        checkb "raises" true
          (match compile ~n:0 (mig ()) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "invalid protocols are rejected" (fun () ->
        let broken =
          Dsl.(
            system "broken"
              ~home:
                (process "h" ~vars:[] ~init:"NOPE"
                   [ state "U" [] ])
              ~remote:(process "r" ~vars:[] ~init:"T" [ state "T" [] ]))
        in
        checkb "raises" true
          (match compile ~n:2 broken with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "initial environment uses defaults and overrides" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Invalidate.system in
        let sh = Prog.var_index prog.home "sh" in
        checkb "sh empty" true
          (Value.equal prog.home.p_init_env.(sh) Value.set_empty));
    case "out-of-domain initial value rejected" (fun () ->
        let sys =
          Dsl.(
            system "badinit"
              ~home:
                (process "h"
                   ~vars:[ ("c", Value.Drid) ]
                   ~init:"U"
                   ~init_env:[ ("c", Value.Vrid 5) ]
                   [
                     state "U" [ recv_any "c" "m" [] ~goto:"G" ];
                     state "G" [ send_to (v "c") "g" [] ~goto:"U" ];
                   ])
              ~remote:
                (process "r" ~vars:[] ~init:"T"
                   [
                     state "T" [ send_home "m" [] ~goto:"W" ];
                     state "W" [ recv_home "g" [] ~goto:"T" ];
                   ]))
        in
        checkb "rejected for n=2" true
          (match compile ~n:2 sys with
          | exception Invalid_argument _ -> true
          | _ -> false);
        checkb "accepted for n=6" true
          (match compile ~n:6 sys with _ -> true));
    case "state and variable indices resolve" (fun () ->
        let prog = compile ~n:2 (mig ()) in
        checki "home init is F" (Prog.state_index prog.home "F")
          prog.home.p_init;
        checkb "o and j exist" true
          (Prog.var_index prog.home "o" >= 0
          && Prog.var_index prog.home "j" >= 0);
        checkb "unknown raises" true
          (match Prog.state_index prog.home "ZZ" with
          | exception Not_found -> true
          | _ -> false));
    case "annotations: migratory optimized" (fun () ->
        let prog = compile ~n:2 (mig ()) in
        let g_req =
          find_guard prog.remote ~st:"I" (is_send_of "req")
        in
        checkb "req is rr-request(gr)" true (g_req.cg_ann = Prog.Rr_request "gr");
        let g_gr = find_guard prog.home ~st:"Fg" (is_send_of "gr") in
        checkb "gr is reply-send" true (g_gr.cg_ann = Prog.Rr_reply_send);
        let g_inv = find_guard prog.home ~st:"I1" (is_send_of "inv") in
        checkb "inv awaits ID" true (g_inv.cg_ann = Prog.Rr_await_repl "ID");
        let g_id = find_guard prog.remote ~st:"Iv" (is_send_of "ID") in
        checkb "ID is reply-send" true (g_id.cg_ann = Prog.Rr_reply_send);
        let g_lr = find_guard prog.remote ~st:"Ev" (is_send_of "LR") in
        checkb "LR is plain" true (g_lr.cg_ann = Prog.Plain);
        let g_rreq = find_guard prog.home ~st:"F" (is_recv_of "req") in
        checkb "home req recv silent" true
          (g_rreq.cg_ann = Prog.Rr_silent_consume);
        let g_rinv = find_guard prog.remote ~st:"V" (is_recv_of "inv") in
        checkb "remote inv recv silent" true
          (g_rinv.cg_ann = Prog.Rr_silent_consume));
    case "annotations: generic scheme is all plain" (fun () ->
        let prog = compile ~reqrep:false ~n:2 (mig ()) in
        let all_plain (proc : Prog.proc) =
          Array.for_all
            (fun (s : Prog.cstate) ->
              Array.for_all (fun (g : Prog.cguard) -> g.cg_ann = Prog.Plain)
                s.cs_guards)
            proc.p_states
        in
        checkb "home" true (all_plain prog.home);
        checkb "remote" true (all_plain prog.remote);
        checkb "no pairs" true (prog.pairs = []));
    case "fire-and-forget overrides LR" (fun () ->
        let prog = Ccr_protocols.Migratory_hand.prog ~n:2 () in
        let g_lr = find_guard prog.remote ~st:"Ev" (is_send_of "LR") in
        checkb "LR reply-send" true (g_lr.cg_ann = Prog.Rr_reply_send);
        let g_hlr = find_guard prog.home ~st:"E" (is_recv_of "LR") in
        checkb "home LR silent" true (g_hlr.cg_ann = Prog.Rr_silent_consume);
        checkb "ff recorded" true (prog.ff_msgs = [ "LR" ]);
        (* pairs survive: LR was not part of one *)
        checki "pairs" 2 (List.length prog.pairs));
    case "fire-and-forget validates direction" (fun () ->
        checkb "home->remote rejected" true
          (match
             Link.compile ~fire_and_forget:[ "gr" ] ~n:2 (mig ())
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        checkb "unknown rejected" true
          (match
             Link.compile ~fire_and_forget:[ "zz" ] ~n:2 (mig ())
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "cs_active and cs_sends" (fun () ->
        let prog = compile ~n:2 (mig ()) in
        let i_state = prog.remote.p_states.(Prog.state_index prog.remote "I") in
        checkb "I is active" true (i_state.cs_active <> None);
        let v_state = prog.remote.p_states.(Prog.state_index prog.remote "V") in
        checkb "V is passive" true (v_state.cs_active = None);
        let i1 = prog.home.p_states.(Prog.state_index prog.home "I1") in
        checki "I1 has one send" 1 (List.length i1.cs_sends);
        let e = prog.home.p_states.(Prog.state_index prog.home "E") in
        checki "E has no sends" 0 (List.length e.cs_sends));
    case "internal states are marked" (fun () ->
        let prog = compile ~n:2 Ccr_protocols.Invalidate.system in
        let invd = prog.home.p_states.(Prog.state_index prog.home "InvD") in
        checkb "InvD internal" true invd.cs_internal;
        let f = prog.home.p_states.(Prog.state_index prog.home "F") in
        checkb "F not internal" true (not f.cs_internal));
  ]

let suite = ("link", tests)
