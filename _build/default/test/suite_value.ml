open Ccr_core
open Test_util

let value = Alcotest.testable Value.pp Value.equal

let set_of_mask m = Value.Vset m

let tests =
  [
    case "default values" (fun () ->
        check value "unit" Value.Vunit (Value.default Value.Dunit);
        check value "bool" (Value.Vbool false) (Value.default Value.Dbool);
        check value "int low bound" (Value.Vint 3)
          (Value.default (Value.Dint (3, 7)));
        check value "rid" (Value.Vrid 0) (Value.default Value.Drid);
        check value "set" (Value.Vset 0) (Value.default Value.Dset));
    case "membership respects n" (fun () ->
        checkb "r1 in n=2" true (Value.member ~n:2 Value.Drid (Value.Vrid 1));
        checkb "r2 not in n=2" false
          (Value.member ~n:2 Value.Drid (Value.Vrid 2));
        checkb "mask 3 in n=2" true
          (Value.member ~n:2 Value.Dset (Value.Vset 3));
        checkb "mask 4 not in n=2" false
          (Value.member ~n:2 Value.Dset (Value.Vset 4));
        checkb "int range" true
          (Value.member ~n:1 (Value.Dint (0, 5)) (Value.Vint 5));
        checkb "int out of range" false
          (Value.member ~n:1 (Value.Dint (0, 5)) (Value.Vint 6));
        checkb "cross-type" false (Value.member ~n:2 Value.Drid (Value.Vint 0)));
    case "enumerate sizes" (fun () ->
        checki "unit" 1 (List.length (Value.enumerate ~n:3 Value.Dunit));
        checki "bool" 2 (List.length (Value.enumerate ~n:3 Value.Dbool));
        checki "int" 5 (List.length (Value.enumerate ~n:3 (Value.Dint (2, 6))));
        checki "rid" 3 (List.length (Value.enumerate ~n:3 Value.Drid));
        checki "set" 8 (List.length (Value.enumerate ~n:3 Value.Dset)));
    case "enumerate members are members" (fun () ->
        List.iter
          (fun d ->
            List.iter
              (fun v -> checkb "member" true (Value.member ~n:3 d v))
              (Value.enumerate ~n:3 d))
          [ Value.Dunit; Value.Dbool; Value.Dint (-2, 2); Value.Drid; Value.Dset ]);
    case "set operations" (fun () ->
        let s = Value.set_empty in
        checkb "empty" true (Value.set_is_empty s);
        let s = Value.set_add 2 s in
        let s = Value.set_add 0 s in
        checkb "mem 0" true (Value.set_mem 0 s);
        checkb "mem 1" false (Value.set_mem 1 s);
        checkb "mem 2" true (Value.set_mem 2 s);
        checki "cardinal" 2 (Value.set_cardinal s);
        Alcotest.(check (list int)) "members" [ 0; 2 ] (Value.set_members s);
        let s = Value.set_remove 0 s in
        checkb "removed" false (Value.set_mem 0 s);
        checkb "idempotent remove" true
          (Value.equal s (Value.set_remove 0 s));
        check value "of_list" (set_of_mask 0b101) (Value.set_of_list [ 0; 2 ]));
    case "encode is injective on samples" (fun () ->
        let all =
          List.concat_map
            (Value.enumerate ~n:4)
            [ Value.Dunit; Value.Dbool; Value.Dint (-3, 9); Value.Drid; Value.Dset ]
          |> List.sort_uniq Value.compare
        in
        let encodings =
          List.map
            (fun v ->
              let b = Buffer.create 8 in
              Value.encode b v;
              Buffer.contents b)
            all
        in
        checki "distinct encodings" (List.length all)
          (List.length (List.sort_uniq String.compare encodings)));
    case "encode_int injective on boundaries" (fun () ->
        let samples = [ 0; 1; 100; 0xf7; 0xf8; 0xf9; 1000; 123456; 999999 ] in
        let enc i =
          let b = Buffer.create 8 in
          Value.encode_int b i;
          Buffer.contents b
        in
        checki "distinct" (List.length samples)
          (List.length (List.sort_uniq String.compare (List.map enc samples))));
    qcase "set_add/mem model" ~count:200
      QCheck2.Gen.(pair (list (int_bound 7)) (int_bound 7))
      (fun (l, x) ->
        let s = Value.set_of_list l in
        Value.set_mem x (Value.set_add x s)
        && (not (Value.set_mem x (Value.set_remove x s)))
        && Value.set_cardinal s = List.length (List.sort_uniq compare l));
    qcase "set members round-trip" ~count:200
      QCheck2.Gen.(list (int_bound 7))
      (fun l ->
        let s = Value.set_of_list l in
        Value.equal s (Value.set_of_list (Value.set_members s)));
  ]

let suite = ("value", tests)
