open Ccr_core
open Test_util

(* A tiny compiled process to exercise guard_instances/complete directly:
   two rid variables, one set variable. *)
let prog_for_guards =
  let open Dsl in
  let home =
    process "h"
      ~vars:
        [
          ("a", Value.Drid); ("b", Value.Drid); ("s", Value.Dset);
          ("t", Value.Drid);
        ]
      ~init:"U"
      [
        state "U" [ recv_any "t" "m" [] ~goto:"G" ];
        state "G"
          [
            send_to (v "t") "g" []
              ~choose:[ ("a", v "s"); ("b", v "s") ]
              ~cond:(not_ (v "a" ==~ v "b"))
              ~goto:"U";
          ];
      ]
  in
  let remote =
    process "r" ~vars:[] ~init:"T"
      [
        state "T" [ send_home "m" [] ~goto:"W" ];
        state "W" [ recv_home "g" [] ~goto:"T" ];
      ]
  in
  compile ~n:4 (system "guards" ~home ~remote)

let tests =
  [
    case "guard_instances expands chooses as a product with conditions"
      (fun () ->
        let proc = prog_for_guards.Prog.home in
        let gstate = proc.p_states.(Prog.state_index proc "G") in
        let g = gstate.cs_guards.(0) in
        let env = Array.copy proc.p_init_env in
        env.(Prog.var_index proc "s") <- Value.set_of_list [ 0; 1; 2 ];
        (* 3 x 3 bindings minus the 3 diagonal ones *)
        let insts = Prog.guard_instances ~self:None env g ~extra:[] in
        checki "off-diagonal pairs" 6 (List.length insts);
        List.iter
          (fun scratch ->
            checkb "a <> b" true
              (not
                 (Value.equal
                    scratch.(Prog.var_index proc "a")
                    scratch.(Prog.var_index proc "b"))))
          insts);
    case "guard_instances on an empty set yields nothing" (fun () ->
        let proc = prog_for_guards.Prog.home in
        let gstate = proc.p_states.(Prog.state_index proc "G") in
        let g = gstate.cs_guards.(0) in
        let env = Array.copy proc.p_init_env in
        checki "none" 0
          (List.length (Prog.guard_instances ~self:None env g ~extra:[])));
    case "extra bindings are visible to conditions" (fun () ->
        let proc = prog_for_guards.Prog.home in
        let ustate = proc.p_states.(Prog.state_index proc "U") in
        let g = ustate.cs_guards.(0) in
        let env = Array.copy proc.p_init_env in
        let t = Prog.var_index proc "t" in
        let insts =
          Prog.guard_instances ~self:None env g ~extra:[ (t, Value.Vrid 3) ]
        in
        checki "one" 1 (List.length insts);
        checkb "bound" true
          (Value.equal (List.hd insts).(t) (Value.Vrid 3)));
    case "complete performs simultaneous assignment" (fun () ->
        (* swap two variables: x, y := y, x must not sequence *)
        let open Dsl in
        let sys =
          system "swap"
            ~home:
              (process "h"
                 ~vars:[ ("x", Value.Drid); ("y", Value.Drid); ("c", Value.Drid) ]
                 ~init:"U"
                 [
                   state "U"
                     [
                       recv_any "c" "m" []
                         ~assigns:[ ("x", v "y"); ("y", v "x") ]
                         ~goto:"U";
                     ];
                 ])
            ~remote:
              (process "r" ~vars:[] ~init:"T"
                 [
                   state "T" [ send_home "m" [] ~goto:"W" ];
                   state "W" [ recv_home "never" [] ~goto:"T" ];
                 ])
        in
        (* "never" is never sent; direction consistency is satisfied by
           declaring it home->remote nowhere... use validate bypass: the
           system is valid because never is only received *)
        let prog = Link.compile ~n:3 sys in
        let proc = prog.Prog.home in
        let g = proc.p_states.(Prog.state_index proc "U").cs_guards.(0) in
        let env = Array.copy proc.p_init_env in
        env.(Prog.var_index proc "x") <- Value.Vrid 1;
        env.(Prog.var_index proc "y") <- Value.Vrid 2;
        let scratch =
          List.hd
            (Prog.guard_instances ~self:None env g
               ~extra:[ (Prog.var_index proc "c", Value.Vrid 0) ])
        in
        let env' = Prog.complete ~self:None scratch g in
        checkb "swapped x" true
          (Value.equal env'.(Prog.var_index proc "x") (Value.Vrid 2));
        checkb "swapped y" true
          (Value.equal env'.(Prog.var_index proc "y") (Value.Vrid 1)));
    case "eval resolves Full_set at link time" (fun () ->
        let prog = compile ~n:3 Ccr_protocols.Barrier.system in
        (* the collect state's full-set condition compiled to a constant;
           check by driving the rendezvous semantics to the full set *)
        let open Ccr_semantics in
        let st = Rendezvous.initial prog in
        let arrive i st =
          let st =
            match
              List.find_opt
                (fun (l, _) ->
                  match l with
                  | Rendezvous.L_tau (Rendezvous.Pr j, "work") -> j = i
                  | _ -> false)
                (Rendezvous.successors prog st)
            with
            | Some (_, s) -> s
            | None -> Alcotest.fail "no work tau"
          in
          match
            List.find_opt
              (fun (l, _) ->
                match l with
                | Rendezvous.L_rendezvous { active = Rendezvous.Pr j; msg = "arrive"; _ }
                  ->
                  j = i
                | _ -> false)
              (Rendezvous.successors prog st)
          with
          | Some (_, s) -> s
          | None -> Alcotest.fail "no arrive"
        in
        let st = arrive 0 st in
        let st = arrive 1 st in
        checkb "still collecting" true
          (Ccr_protocols.Props.rv_home_in prog [ "C" ] st);
        let st = arrive 2 st in
        checkb "release phase" true
          (Ccr_protocols.Props.rv_home_in prog [ "R" ] st));
    case "wire encoding is injective over message samples" (fun () ->
        let samples =
          [
            Ccr_refine.Wire.Ack;
            Ccr_refine.Wire.Nack;
            Ccr_refine.Wire.Req { m_name = "a"; m_payload = [] };
            Ccr_refine.Wire.Req { m_name = "b"; m_payload = [] };
            Ccr_refine.Wire.Req { m_name = "a"; m_payload = [ Value.Vrid 0 ] };
            Ccr_refine.Wire.Req { m_name = "a"; m_payload = [ Value.Vrid 1 ] };
            Ccr_refine.Wire.Req
              { m_name = "a"; m_payload = [ Value.Vint 0; Value.Vbool true ] };
            Ccr_refine.Wire.Req { m_name = "ab"; m_payload = [] };
          ]
        in
        let enc w =
          let b = Buffer.create 16 in
          Ccr_refine.Wire.encode b w;
          Buffer.contents b
        in
        checki "distinct" (List.length samples)
          (List.length
             (List.sort_uniq String.compare (List.map enc samples))));
    case "pp_caction renders CSP notation" (fun () ->
        let prog = compile ~n:2 (Ccr_protocols.Migratory.system ()) in
        let proc = prog.Prog.home in
        let g = proc.p_states.(Prog.state_index proc "I1").cs_guards.(0) in
        checks "inv send" "r(o)!inv"
          (Fmt.str "%a" (Prog.pp_caction proc) g.Prog.cg_action));
    qcase ~count:100 "value encodings never collide with int encodings"
      QCheck2.Gen.(pair (int_bound 1000) (int_bound 62))
      (fun (i, r) ->
        let b1 = Buffer.create 8 in
        Value.encode b1 (Value.Vint i);
        let b2 = Buffer.create 8 in
        Value.encode b2 (Value.Vrid r);
        Buffer.contents b1 <> Buffer.contents b2);
  ]

let suite = ("prog", tests)
