test/suite_sim.ml: Array Async Ccr_protocols Ccr_refine Ccr_simulate Float List Sched Sim Test_util
