test/suite_compile.ml: Ccr_core Ccr_protocols Ccr_refine Ccr_viz Codegen Compile Fmt Ir List String Test_util
