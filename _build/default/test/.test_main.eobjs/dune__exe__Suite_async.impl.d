test/suite_async.ml: Alcotest Array Async Ccr_core Ccr_protocols Ccr_refine Dsl Expected_counts Fmt Hashtbl List Prog Queue Test_util Value Wire
