test/suite_parse.ml: Alcotest Bytes Ccr_core Ccr_protocols Expr Filename Fmt Ir Link List Parse QCheck2 Reqrep Result String Sys Test_util Validate Value
