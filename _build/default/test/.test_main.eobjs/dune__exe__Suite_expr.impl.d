test/suite_expr.ml: Alcotest Ccr_core Expr List Test_util Value
