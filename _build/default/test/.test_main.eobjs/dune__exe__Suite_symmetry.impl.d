test/suite_symmetry.ml: Array Async Ccr_core Ccr_modelcheck Ccr_protocols Ccr_refine Ccr_semantics Fun Hashtbl List Prog Queue Rendezvous Symmetry Test_util Value
