test/expected_counts.ml:
