test/suite_value.ml: Alcotest Buffer Ccr_core List QCheck2 String Test_util Value
