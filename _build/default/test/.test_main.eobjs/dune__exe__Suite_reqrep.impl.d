test/suite_reqrep.ml: Alcotest Ccr_core Ccr_protocols Dsl Expr Fmt List Reqrep Test_util Validate Value
