test/suite_rendezvous.ml: Alcotest Array Ccr_core Ccr_protocols Ccr_semantics Expected_counts Fmt Hashtbl List Prog Rendezvous String Test_util Value
