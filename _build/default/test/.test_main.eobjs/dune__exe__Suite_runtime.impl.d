test/suite_runtime.ml: Alcotest Array Barrier Ccr_core Ccr_protocols Ccr_refine Ccr_runtime Invalidate Link List Lock_server Mesi Migratory Migratory_hand String Test_util Thread Write_update
