test/test_util.ml: Alcotest Ccr_core Ccr_modelcheck Ccr_refine Ccr_semantics Dsl Fmt Link List QCheck2 QCheck_alcotest String Value
