test/suite_explore.ml: Alcotest Array Ccr_modelcheck Ccr_protocols Ccr_refine Char Fmt Fun List String Sys Test_util Unix
