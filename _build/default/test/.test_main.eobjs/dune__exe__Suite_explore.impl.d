test/suite_explore.ml: Alcotest Array Ccr_modelcheck Ccr_protocols Ccr_refine Fmt Fun List Sys Test_util
