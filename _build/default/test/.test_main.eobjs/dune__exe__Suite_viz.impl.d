test/suite_viz.ml: Async Ccr_core Ccr_protocols Ccr_refine Ccr_simulate Ccr_viz Dsl Ir List Prog Report String Test_util Value
