test/suite_validate.ml: Alcotest Ccr_core Ccr_protocols Dsl Expr Fmt Ir List Test_util Validate Value
