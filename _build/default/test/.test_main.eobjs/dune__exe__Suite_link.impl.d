test/suite_link.ml: Alcotest Array Ccr_core Ccr_protocols Dsl Link List Prog Test_util Value
