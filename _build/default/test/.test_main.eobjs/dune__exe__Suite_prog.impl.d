test/suite_prog.ml: Alcotest Array Buffer Ccr_core Ccr_protocols Ccr_refine Ccr_semantics Dsl Fmt Link List Prog QCheck2 Rendezvous String Test_util Value
