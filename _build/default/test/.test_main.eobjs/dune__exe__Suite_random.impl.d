test/suite_random.ml: Ccr_core Ccr_modelcheck Ccr_refine Ccr_semantics Ccr_simulate Dsl Fmt Fun Hashtbl Ir Link List QCheck2 Queue Reqrep String Test_util Validate Value
