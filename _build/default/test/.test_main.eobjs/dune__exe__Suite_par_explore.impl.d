test/suite_par_explore.ml: Alcotest Ccr_modelcheck Ccr_protocols Ccr_refine Fmt Fun List Sys Test_util
