test/suite_absmap.ml: Absmap Alcotest Array Async Ccr_core Ccr_protocols Ccr_refine Ccr_semantics Fmt Hashtbl List Option Prog Queue Rendezvous Test_util Value Wire
