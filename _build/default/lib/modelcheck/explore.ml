type ('s, 'l) system = {
  init : 's;
  succ : 's -> ('l * 's) list;
  encode : 's -> string;
}

type limit = L_states | L_memory | L_time

type strategy = Bfs | Dfs

type visited_mode = Exact | Bitstate of int

type 's outcome =
  | Complete
  | Limit of limit
  | Violation of { invariant : string; state : 's }
  | Deadlock of 's

type ('s, 'l) stats = {
  outcome : 's outcome;
  states : int;
  transitions : int;
  time_s : float;
  mem_bytes : int;
  trace : ('l option * 's) list option;
}

(* Approximate per-state bookkeeping overhead of the visited set, on top of
   the encoded key itself: hash-table bucket, boxed string header, id.  The
   figure only needs to be stable, not exact: it turns the memory cap into
   a deterministic, reproducible cap, which is what the paper's 64 MB
   "Unfinished" entries correspond to. *)
let per_state_overhead = 64

(* The visited set, abstracted over exact hashing vs bitstate hashing.
   [add] returns true when the key was not seen before (and marks it);
   [bytes] is the memory the set holds. *)
type store = { add : string -> bool; bytes : unit -> int }

let exact_store () =
  let tbl : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let mem = ref 0 in
  {
    add =
      (fun key ->
        if Hashtbl.mem tbl key then false
        else begin
          Hashtbl.add tbl key ();
          mem := !mem + String.length key + per_state_overhead;
          true
        end);
    bytes = (fun () -> !mem);
  }

let bitstate_store bits =
  let bits = max 10 (min 34 bits) in
  let nbits = 1 lsl bits in
  let table = Bytes.make (nbits / 8) '\000' in
  let mask = nbits - 1 in
  let get i = Char.code (Bytes.get table (i lsr 3)) land (1 lsl (i land 7)) <> 0 in
  let set i =
    Bytes.set table (i lsr 3)
      (Char.chr
         (Char.code (Bytes.get table (i lsr 3)) lor (1 lsl (i land 7))))
  in
  {
    add =
      (fun key ->
        (* two independent hash positions, as SPIN's double bitstate *)
        let h1 = Hashtbl.hash key land mask in
        let h2 = Hashtbl.hash (key ^ "\x01") land mask in
        let seen = get h1 && get h2 in
        if not seen then begin
          set h1;
          set h2
        end;
        not seen);
    bytes = (fun () -> nbits / 8);
  }

let run ?(strategy = Bfs) ?(visited = Exact) ?max_states ?max_mem_bytes
    ?max_time_s ?(check_deadlock = false) ?(trace = false) ?(invariants = [])
    sys =
  let t0 = Unix.gettimeofday () in
  let store =
    match visited with Exact -> exact_store () | Bitstate b -> bitstate_store b
  in
  (* with [trace]: states.(id) and parents.(id) = (parent id, label) *)
  let parents = ref [||] in
  let states = ref [||] in
  let n_states = ref 0 in
  let record st parent label =
    if trace then begin
      if !n_states >= Array.length !states then begin
        let cap = max 1024 (2 * Array.length !states) in
        let states' = Array.make cap st
        and parents' = Array.make cap (0, None) in
        Array.blit !states 0 states' 0 !n_states;
        Array.blit !parents 0 parents' 0 !n_states;
        states := states';
        parents := parents'
      end;
      !states.(!n_states) <- st;
      !parents.(!n_states) <- (parent, label)
    end
  in
  let rebuild_trace id =
    if not trace then None
    else
      let rec up id acc =
        let parent, label = !parents.(id) in
        let entry = (label, !states.(id)) in
        if parent = id then entry :: acc else up parent (entry :: acc)
      in
      Some (up id [])
  in
  let push_frontier, pop_frontier, frontier_empty =
    match strategy with
    | Bfs ->
      let q = Queue.create () in
      ( (fun x -> Queue.push x q),
        (fun () -> Queue.pop q),
        fun () -> Queue.is_empty q )
    | Dfs ->
      let s = Stack.create () in
      ( (fun x -> Stack.push x s),
        (fun () -> Stack.pop s),
        fun () -> Stack.is_empty s )
  in
  let n_transitions = ref 0 in
  let finished = ref None in
  let bad_id = ref 0 in
  let finish ?id o =
    if !finished = None then begin
      finished := Some o;
      match id with Some id -> bad_id := id | None -> ()
    end
  in
  let violated st =
    List.find_opt (fun (_, check) -> not (check st)) invariants
  in
  let discover st parent label =
    let key = sys.encode st in
    if store.add key then begin
      let id = !n_states in
      record st parent label;
      incr n_states;
      (match violated st with
      | Some (name, _) ->
        finish ~id (Violation { invariant = name; state = st })
      | None -> ());
      (match (max_states, max_mem_bytes) with
      | Some cap, _ when !n_states >= cap -> finish (Limit L_states)
      | _, Some cap when store.bytes () >= cap -> finish (Limit L_memory)
      | _ -> ());
      push_frontier (st, id)
    end
  in
  discover sys.init 0 None;
  let tick = ref 0 in
  while (not (frontier_empty ())) && !finished = None do
    let st, id = pop_frontier () in
    incr tick;
    (match max_time_s with
    | Some cap when !tick land 255 = 0 && Unix.gettimeofday () -. t0 > cap ->
      finish (Limit L_time)
    | _ -> ());
    if !finished = None then begin
      let succs = sys.succ st in
      if check_deadlock && succs = [] then finish ~id (Deadlock st);
      List.iter
        (fun (label, st') ->
          if !finished = None then begin
            incr n_transitions;
            discover st' id (Some label)
          end)
        succs
    end
  done;
  let outcome = match !finished with Some o -> o | None -> Complete in
  let trace_path =
    match outcome with
    | Violation _ | Deadlock _ -> rebuild_trace !bad_id
    | Complete | Limit _ -> None
  in
  {
    outcome;
    states = !n_states;
    transitions = !n_transitions;
    time_s = Unix.gettimeofday () -. t0;
    mem_bytes = store.bytes ();
    trace = trace_path;
  }

let pp_outcome pp_state ppf = function
  | Complete -> Fmt.string ppf "complete"
  | Limit L_states -> Fmt.string ppf "unfinished (state cap)"
  | Limit L_memory -> Fmt.string ppf "unfinished (memory cap)"
  | Limit L_time -> Fmt.string ppf "unfinished (time cap)"
  | Violation { invariant; state } ->
    Fmt.pf ppf "invariant %s violated at@,%a" invariant pp_state state
  | Deadlock state -> Fmt.pf ppf "deadlock at@,%a" pp_state state
