lib/modelcheck/explore.mli: Fmt
