lib/modelcheck/graph.mli: Explore
