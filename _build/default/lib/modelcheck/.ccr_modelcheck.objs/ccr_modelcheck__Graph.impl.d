lib/modelcheck/graph.ml: Array Explore Hashtbl List Queue Stack
