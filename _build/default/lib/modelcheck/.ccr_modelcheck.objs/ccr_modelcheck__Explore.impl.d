lib/modelcheck/explore.ml: Array Atomic Bytes Char Condition Domain Fmt Hashtbl List Mutex Printexc Queue Stack String Unix
