lib/modelcheck/explore.ml: Array Bytes Char Fmt Hashtbl List Queue Stack String Unix
