lib/viz/promela.mli: Ccr_core Ir
