lib/viz/msc.ml: Async Buffer Bytes Ccr_core Ccr_refine Ccr_simulate Fmt List Prog String
