lib/viz/dot.ml: Buffer Ccr_core Ccr_refine Compile Fmt Ir List String
