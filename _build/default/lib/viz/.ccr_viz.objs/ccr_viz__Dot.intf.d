lib/viz/dot.mli: Ccr_core Ccr_refine Compile Ir
