lib/viz/msc.mli: Async Ccr_core Ccr_refine Prog
