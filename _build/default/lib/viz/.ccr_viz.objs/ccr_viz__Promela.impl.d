lib/viz/promela.ml: Buffer Ccr_core Expr Fmt Ir List String Validate Value
