lib/viz/ascii.ml: Ccr_core Ccr_refine Compile Fmt Ir List
