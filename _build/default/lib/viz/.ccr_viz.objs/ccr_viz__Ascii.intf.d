lib/viz/ascii.mli: Ccr_core Ccr_refine Compile Fmt Ir
