(** ASCII message-sequence charts of asynchronous executions.

    One lane per node (home first), one line per transition.  Arrows mark
    {e emissions} — the network is asynchronous, so a message's
    consumption appears later as its own event ([R-deliver], [R-T1],
    [H-admit], ...) on the receiving lane.  Feed the label sequence of a
    simulation ([Ccr_simulate.Sim.run_trace]) or the labels of a
    counterexample trace. *)

open Ccr_core
open Ccr_refine

val render : Prog.t -> Async.label list -> string

val render_run :
  ?seed:int -> ?steps:int -> Prog.t -> Async.config -> string
(** Convenience: simulate [steps] (default 40) uniformly scheduled
    transitions and render them. *)
