open Ccr_core

let rec expr ~n ~self (e : Expr.t) =
  match e with
  | Expr.Const Value.Vunit -> "0"
  | Expr.Const (Value.Vbool b) -> if b then "1" else "0"
  | Expr.Const (Value.Vint i) -> string_of_int i
  | Expr.Const (Value.Vrid r) -> string_of_int r
  | Expr.Const (Value.Vset m) -> string_of_int m
  | Expr.Var x -> x
  | Expr.Self -> self
  | Expr.Set_add (s, r) ->
    Fmt.str "(%s | (1 << %s))" (expr ~n ~self s) (expr ~n ~self r)
  | Expr.Set_remove (s, r) ->
    Fmt.str "(%s & ~(1 << %s))" (expr ~n ~self s) (expr ~n ~self r)
  | Expr.Set_singleton r -> Fmt.str "(1 << %s)" (expr ~n ~self r)
  | Expr.Full_set -> Fmt.str "((1 << %d) - 1)" n
  | Expr.Succ e -> Fmt.str "(%s + 1)" (expr ~n ~self e)

let rec bexpr ~n ~self (b : Expr.b) =
  match b with
  | Expr.True -> "true"
  | Expr.Not b -> Fmt.str "!(%s)" (bexpr ~n ~self b)
  | Expr.And (a, b) -> Fmt.str "(%s && %s)" (bexpr ~n ~self a) (bexpr ~n ~self b)
  | Expr.Or (a, b) -> Fmt.str "(%s || %s)" (bexpr ~n ~self a) (bexpr ~n ~self b)
  | Expr.Eq (a, b) -> Fmt.str "(%s == %s)" (expr ~n ~self a) (expr ~n ~self b)
  | Expr.Set_mem (r, s) ->
    Fmt.str "((%s & (1 << %s)) != 0)" (expr ~n ~self s) (expr ~n ~self r)
  | Expr.Set_is_empty s -> Fmt.str "(%s == 0)" (expr ~n ~self s)

(* payload lists padded to the global maximum arity *)
let pad_args ~n ~self ~arity args =
  let given = List.map (expr ~n ~self) args in
  given @ List.init (arity - List.length args) (fun _ -> "0")

let pad_vars ~arity vars =
  vars @ List.init (arity - List.length vars) (fun _ -> "_")

let assigns_str ~n ~self assigns =
  (* simultaneous assignment: evaluate into temporaries first when more
     than one assignment could interfere; single assignments (the common
     case) go straight through *)
  match assigns with
  | [] -> ""
  | [ (x, e) ] -> Fmt.str "%s = %s; " x (expr ~n ~self e)
  | many ->
    let temps =
      List.mapi (fun i (_, e) -> Fmt.str "_t%d = %s; " i (expr ~n ~self e)) many
    in
    let writes = List.mapi (fun i (x, _) -> Fmt.str "%s = _t%d; " x i) many in
    String.concat "" (temps @ writes)

let max_assigns (p : Ir.process) =
  List.fold_left
    (fun acc (st : Ir.state) ->
      List.fold_left
        (fun acc (g : Ir.guard) -> max acc (List.length g.Ir.g_assigns))
        acc st.Ir.s_guards)
    0 p.p_states

(* Emit the nondeterministic selection of a choose binder. *)
let choose_str ~n ~self (x, set_e) =
  let opts =
    List.init n (fun r ->
        Fmt.str ":: ((%s & (1 << %d)) != 0) -> %s = %d\n      " (expr ~n ~self set_e)
          r x r)
  in
  Fmt.str "if\n      %sfi; " (String.concat "" opts)

let decl_var (x, d) =
  match d with
  | Value.Dset -> Fmt.str "  int %s = 0;\n" x
  | Value.Dunit | Value.Dbool | Value.Dint _ | Value.Drid ->
    Fmt.str "  byte %s = 0;\n" x

type ctx = {
  n : int;
  arity : int;
  buf : Buffer.t;
}

let out ctx fmt = Fmt.kstr (Buffer.add_string ctx.buf) fmt

(* One executable option of a state's selection.  [recv_chan] is e.g.
   "to_h[0]" and [sender_bind] the statement binding the sender id. *)
let emit_guard ctx ~self ~is_remote (g : Ir.guard) =
  let chooses =
    String.concat "" (List.map (choose_str ~n:ctx.n ~self) g.Ir.g_choose)
  in
  let cond = bexpr ~n:ctx.n ~self g.Ir.g_cond in
  let assigns = assigns_str ~n:ctx.n ~self g.Ir.g_assigns in
  let fin = Fmt.str "%sgoto %s" assigns g.Ir.g_target in
  match g.Ir.g_action with
  | Ir.Tau _ ->
    (* choose binders before the condition would not be guarded; taus with
       chooses are not used by our protocols, so keep the simple order *)
    out ctx "  :: atomic { %s -> %s%s }\n" cond chooses fin
  | Ir.Send (target, m, args) ->
    let chan =
      match (target, is_remote) with
      | Ir.To_home, true -> Fmt.str "to_h[%s]" self
      | Ir.To_remote e, false -> Fmt.str "to_r[%s]" (expr ~n:ctx.n ~self e)
      | _ -> invalid_arg "Promela: direction violates the star topology"
    in
    let payload =
      match pad_args ~n:ctx.n ~self ~arity:ctx.arity args with
      | [] -> ""
      | l -> "," ^ String.concat "," l
    in
    if g.Ir.g_choose = [] then
      out ctx "  :: atomic { %s -> %s!%s%s; %s }\n" cond chan m payload fin
    else
      (* the choose must run before the send addresses its target *)
      out ctx "  :: atomic { %s -> %s%s!%s%s; %s }\n" cond chooses chan m
        payload fin
  | Ir.Recv (source, m, vars) -> (
    let payload =
      match pad_vars ~arity:ctx.arity vars with
      | [] -> ""
      | l -> "," ^ String.concat "," l
    in
    match (source, is_remote) with
    | Ir.From_home, true ->
      out ctx "  :: atomic { to_r[%s]?%s%s -> %s%s }\n" self m payload
        (if cond = "true" then ""
         else Fmt.str "if :: %s :: else -> assert(false) fi; " cond)
        fin
    | Ir.From_remote e, false ->
      out ctx "  :: atomic { to_h[%s]?%s%s -> %s%s }\n" (expr ~n:ctx.n ~self e) m
        payload
        (if cond = "true" then ""
         else Fmt.str "if :: %s :: else -> assert(false) fi; " cond)
        fin
    | Ir.From_any_remote x, false ->
      for i = 0 to ctx.n - 1 do
        out ctx "  :: atomic { to_h[%d]?%s%s -> %s = %d; %s%s }\n" i m payload
          x i
          (if cond = "true" then ""
           else Fmt.str "if :: %s :: else -> assert(false) fi; " cond)
          fin
      done
    | _ -> invalid_arg "Promela: direction violates the star topology")

let emit_process ctx ~is_remote (p : Ir.process) =
  let self = if is_remote then "me" else "255" in
  let params = if is_remote then "byte me" else "" in
  out ctx "proctype %s(%s) {\n" p.p_name params;
  List.iter (fun v -> out ctx "%s" (decl_var v)) p.p_vars;
  let na = max_assigns p in
  if na > 1 then
    for i = 0 to na - 1 do
      out ctx "  int _t%d = 0;\n" i
    done;
  List.iter
    (fun (x, v) ->
      let v =
        match v with
        | Value.Vunit -> 0
        | Value.Vbool b -> if b then 1 else 0
        | Value.Vint i -> i
        | Value.Vrid r -> r
        | Value.Vset m -> m
      in
      out ctx "  %s = %d;\n" x v)
    p.p_init_env;
  out ctx "  goto %s;\n" p.p_init_state;
  List.iter
    (fun (st : Ir.state) ->
      out ctx "%s:\n  if\n" st.Ir.s_name;
      List.iter (fun g -> emit_guard ctx ~self ~is_remote g) st.Ir.s_guards;
      out ctx "  fi;\n")
    p.p_states;
  out ctx "}\n\n"

let of_system ~n (sys : Ir.system) =
  (match Validate.check sys with
  | Ok _ -> ()
  | Error es ->
    invalid_arg
      (Fmt.str "Promela.of_system: invalid protocol: %a"
         Fmt.(list ~sep:sp Validate.pp_error)
         es));
  if n > 8 then
    invalid_arg "Promela.of_system: byte-encoded sharer sets support n <= 8";
  let sigs = Validate.check_exn sys in
  let arity =
    List.fold_left
      (fun a (s : Validate.signature) -> max a (List.length s.payload))
      0 sigs
  in
  let ctx = { n; arity; buf = Buffer.create 4096 } in
  out ctx "/* generated by ccrefine from the rendezvous protocol \"%s\"\n"
    sys.sys_name;
  out ctx "   (n = %d remotes); rendezvous channels, paper methodology */\n\n"
    n;
  out ctx "mtype = { %s };\n"
    (String.concat ", " (List.map (fun s -> s.Validate.msg) sigs));
  let fields =
    "mtype" :: List.init arity (fun _ -> "byte") |> String.concat ", "
  in
  out ctx "chan to_h[%d] = [0] of { %s };\n" n fields;
  out ctx "chan to_r[%d] = [0] of { %s };\n\n" n fields;
  emit_process ctx ~is_remote:false sys.home;
  emit_process ctx ~is_remote:true sys.remote;
  out ctx "init {\n  atomic {\n    run %s();\n" sys.home.p_name;
  for i = 0 to n - 1 do
    out ctx "    run %s(%d);\n" sys.remote.p_name i
  done;
  out ctx "  }\n}\n";
  Buffer.contents ctx.buf
