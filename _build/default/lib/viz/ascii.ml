open Ccr_core
open Ccr_refine

let pp_process = Ir.pp_process
let pp_system = Ir.pp_system

let kind_suffix = function
  | Compile.Communication -> ""
  | Compile.Internal -> " (internal)"
  | Compile.Transient -> " (transient)"

let pp_automaton ppf (a : Compile.automaton) =
  Fmt.pf ppf "@[<v>automaton %s (init %s)@," a.a_name a.a_init;
  List.iter
    (fun (s, k) ->
      Fmt.pf ppf "  state %s%s:@," s (kind_suffix k);
      List.iter
        (fun (e : Compile.edge) ->
          if e.e_from = s then
            Fmt.pf ppf "    --%s--> %s@," e.e_label e.e_to)
        a.a_edges)
    a.a_states;
  Fmt.pf ppf "@]"
