open Ccr_core
open Ccr_refine

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let of_process (p : Ir.process) =
  let buf = Buffer.create 1024 in
  let out fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  out "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=circle];\n"
    (escape p.p_name);
  out "  __init [shape=point];\n  __init -> \"%s\";\n" (escape p.p_init_state);
  List.iter
    (fun (st : Ir.state) ->
      if Ir.state_is_internal st then
        out "  \"%s\" [shape=box];\n" (escape st.s_name))
    p.p_states;
  List.iter
    (fun (st : Ir.state) ->
      List.iter
        (fun (g : Ir.guard) ->
          let label = Fmt.str "%a" Ir.pp_guard g in
          (* strip the "-> target" suffix that pp_guard appends *)
          let label =
            match String.index_opt label '>' with
            | Some i when i >= 2 && label.[i - 1] = '-' ->
              String.sub label 0 (i - 2)
            | _ -> label
          in
          out "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape st.s_name)
            (escape g.g_target) (escape label))
        st.s_guards)
    p.p_states;
  out "}\n";
  Buffer.contents buf

let of_automaton (a : Compile.automaton) =
  let buf = Buffer.create 1024 in
  let out fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  out "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=circle];\n"
    (escape a.a_name);
  out "  __init [shape=point];\n  __init -> \"%s\";\n" (escape a.a_init);
  List.iter
    (fun (s, k) ->
      match k with
      | Compile.Transient -> out "  \"%s\" [style=dashed];\n" (escape s)
      | Compile.Internal -> out "  \"%s\" [shape=box];\n" (escape s)
      | Compile.Communication -> ())
    a.a_states;
  List.iter
    (fun (e : Compile.edge) ->
      let style =
        match e.e_kind with
        | Compile.E_nack_in | Compile.E_recv_nomatch -> " style=dotted"
        | Compile.E_ignore -> " style=dotted"
        | _ -> ""
      in
      out "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n" (escape e.e_from)
        (escape e.e_to) (escape e.e_label) style)
    a.a_edges;
  out "}\n";
  Buffer.contents buf
