(** Plain-text rendering of protocols and refined automata.

    [pp_system] renders a rendezvous protocol the way the paper's
    Figures 1–3 describe them (states, guard lists, internal markers);
    [pp_automaton] renders the explicit refined automata of Figures 4–5,
    with transient states marked the way the paper dots them. *)

open Ccr_core
open Ccr_refine

val pp_process : Ir.process Fmt.t
val pp_system : Ir.system Fmt.t
val pp_automaton : Compile.automaton Fmt.t
