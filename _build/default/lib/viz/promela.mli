(** Promela (SPIN) export of rendezvous protocols.

    The paper verified its rendezvous protocols with SPIN (§5); this
    exporter regenerates such models from the same {!Ir.system} the OCaml
    checker executes, so the two toolchains can be cross-validated.
    Rendezvous channels (capacity 0) per remote and direction carry
    [mtype] message names plus byte-encoded payloads; CSP guards become
    guarded options of a state-labeled goto program.

    Only the rendezvous level is exported: in the paper's methodology
    that is the level the designer verifies, the asynchronous protocol
    being correct by refinement. *)

open Ccr_core

val of_system : n:int -> Ir.system -> string
(** @raise Invalid_argument if the system fails validation or [n] exceeds
    the 8 remotes a byte-encoded sharer set supports. *)
