(** Graphviz export of protocol automata.

    Communication states are drawn as solid circles, internal states as
    plain nodes and transient states (refined automata only) as dashed
    circles, matching the dotted circles of the paper's Figures 4–5. *)

open Ccr_core
open Ccr_refine

val of_process : Ir.process -> string
(** A rendezvous-level process (paper Figures 1–3 style). *)

val of_automaton : Compile.automaton -> string
(** A refined automaton (paper Figures 4–5 style). *)
