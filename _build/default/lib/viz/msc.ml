open Ccr_core
open Ccr_refine

(* lane 0 = home, lane i+1 = remote i *)
type event =
  | Msg of int * int * string  (** src lane, dst lane, text *)
  | Local of int * string

let classify (l : Async.label) =
  let h = 0 and r = l.actor + 1 in
  match l.rule with
  | Async.R_C1 | Async.R_C2 -> Msg (r, h, l.subject)
  | Async.R_reply_send -> Msg (r, h, l.subject)
  | Async.R_C3_ack -> Msg (r, h, "ack")
  | Async.R_C3_nack -> Msg (r, h, "nack")
  | Async.H_C2 | Async.H_reply_send -> Msg (h, r, l.subject)
  | Async.H_C1 -> Msg (h, r, "ack")
  | Async.H_T6 | Async.H_nack_full -> Msg (h, r, "nack")
  | Async.H_tau -> Local (h, "tau:" ^ l.subject)
  | Async.R_tau -> Local (r, "tau:" ^ l.subject)
  | Async.H_C1_silent | Async.H_T1 | Async.H_T1_repl | Async.H_T2
  | Async.H_T3 | Async.H_T4 | Async.H_T5 | Async.H_admit
  | Async.H_admit_progress ->
    Local (h, Async.rule_name l.rule ^ if l.subject = "" then "" else ":" ^ l.subject)
  | Async.R_T1 | Async.R_T2 | Async.R_T3 | Async.R_repl_recv
  | Async.R_C3_silent | Async.R_deliver ->
    Local (r, Async.rule_name l.rule ^ if l.subject = "" then "" else ":" ^ l.subject)

let render (prog : Prog.t) labels =
  let lanes = prog.n + 1 in
  let step = 12 in
  let width = ((lanes - 1) * step) + 6 in
  let col lane = lane * step in
  let buf = Buffer.create 1024 in
  (* header *)
  let header = Bytes.make width ' ' in
  let put_text b pos s =
    String.iteri
      (fun i c ->
        if pos + i >= 0 && pos + i < Bytes.length b then
          Bytes.set b (pos + i) c)
      s
  in
  put_text header (col 0) "home";
  for i = 0 to prog.n - 1 do
    put_text header (col (i + 1)) (Fmt.str "r%d" i)
  done;
  Buffer.add_string buf (Bytes.to_string header);
  Buffer.add_char buf '\n';
  let line () =
    let b = Bytes.make width ' ' in
    for lane = 0 to lanes - 1 do
      Bytes.set b (col lane) '|'
    done;
    b
  in
  List.iter
    (fun label ->
      let b = line () in
      let annot =
        match classify label with
        | Local (lane, text) ->
          Bytes.set b (col lane) 'o';
          text
        | Msg (src, dst, text) ->
          let a = col src and z = col dst in
          let lo = min a z and hi = max a z in
          for x = lo + 1 to hi - 1 do
            if Bytes.get b x = ' ' then Bytes.set b x '-'
          done;
          Bytes.set b (if z > a then z - 1 else z + 1)
            (if z > a then '>' else '<');
          Bytes.set b a '+';
          Fmt.str "%s %s"
            (if src = 0 then "home->" ^ "r" ^ string_of_int (dst - 1)
             else "r" ^ string_of_int (src - 1) ^ "->home")
            text
      in
      Buffer.add_string buf (Bytes.to_string b);
      Buffer.add_string buf ("  " ^ Fmt.str "%a" Async.pp_label label);
      ignore annot;
      Buffer.add_char buf '\n')
    labels;
  Buffer.contents buf

let render_run ?(seed = 42) ?(steps = 40) prog cfg =
  let labels =
    Ccr_simulate.Sim.run_trace ~seed ~steps prog cfg
      Ccr_simulate.Sched.uniform
  in
  render prog labels
