lib/semantics/rendezvous.mli: Ccr_core Fmt Prog Value
