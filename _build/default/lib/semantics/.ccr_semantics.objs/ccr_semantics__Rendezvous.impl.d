lib/semantics/rendezvous.ml: Array Buffer Ccr_core Fmt List Prog Value
