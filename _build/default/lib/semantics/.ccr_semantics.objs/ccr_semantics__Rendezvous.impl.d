lib/semantics/rendezvous.ml: Array Buffer Ccr_core Domain Fmt List Prog Value
