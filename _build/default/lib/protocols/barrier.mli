(** A barrier-synchronization protocol.

    Not a cache protocol, but squarely within the paper's protocol class
    (DSM runtime services share the same star shape, cf. the Avalanche
    synchronization study the paper cites): every remote announces
    [arrive]; once the home has collected all [n] arrivals it releases
    each remote in turn with [go], choosing release order
    nondeterministically from the arrived set.

    Unlike the cache protocols, the home's [go] sends are {e not}
    request/reply-optimizable (between a remote's [arrive] and its [go]
    the home rendezvouses with every other remote, and the requester
    alias is killed by the collection loop), so the refined protocol
    exercises the generic path of Table 2 — home-initiated plain requests
    with choose binders, acks and rotation. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : Ir.system

val rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list
(** The release phase only starts complete ([s] is the full set on entry
    to [R]); an arrived remote recorded in [s] is still waiting. *)

val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
