open Ccr_core

let prog ?with_data ~n () =
  Link.compile ~fire_and_forget:[ "LR" ] ~n (Migratory.system ?with_data ())

let async_invariants = Migratory.async_invariants
