open Ccr_core
open Ccr_refine
open Dsl

(* Home: [sh] = sharers, [pend] = writers whose rounds are deferred,
   [w] = writer being served, [todo] = sharers still to update this
   round, [val] = the line (last writer's id), [t]/[x]/[j] = binders. *)
let home =
  let vars =
    [
      ("sh", Value.Dset); ("pend", Value.Dset); ("todo", Value.Dset);
      ("w", Value.Drid); ("j", Value.Drid); ("t", Value.Drid);
      ("x", Value.Drid); ("vl", Value.Drid);
    ]
  in
  let rel_guards goto_more goto_empty =
    [
      recv_any "x" "relS" []
        ~cond:(not_ (is_empty (v "sh" -~ v "x")))
        ~assigns:[ ("sh", v "sh" -~ v "x"); ("todo", v "todo" -~ v "x"); ("x", rid 0) ]
        ~goto:goto_more;
      recv_any "x" "relS" []
        ~cond:(is_empty (v "sh" -~ v "x"))
        ~assigns:
          [ ("sh", empty_set); ("todo", empty_set); ("x", rid 0) ]
        ~goto:goto_empty;
    ]
  in
  process "home" ~vars ~init:"F"
    [
      state "F" [ recv_any "t" "reqS" [] ~goto:"FgS" ];
      state "FgS"
        [
          send_to (v "t") "grS" [ v "vl" ]
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      state "Sh"
        ([
           recv_any "t" "reqS" [] ~goto:"ShG";
           recv_any "x" "wr" []
             ~assigns:[ ("pend", v "pend" +~ v "x"); ("x", rid 0) ]
             ~goto:"WCheck";
         ]
        @ rel_guards "Sh" "F");
      state "ShG"
        [
          send_to (v "t") "grS" [ v "vl" ]
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      (* pick the next deferred writer, if any; its value is its id.  A
         writer with no other sharers gets acknowledged immediately. *)
      state "WCheck"
        [
          tau "next"
            ~choose:[ ("w", v "pend") ]
            ~cond:(not_ (is_empty (v "pend")))
            ~assigns:
              [
                ("pend", v "pend" -~ v "w");
                ("vl", v "w");
                ("todo", v "sh" -~ v "w");
                ("j", rid 0);
              ]
            ~goto:"UpdOrAck";
          tau "idle" ~cond:(is_empty (v "pend"))
            ~assigns:[ ("w", rid 0); ("j", rid 0) ]
            ~goto:"Sh";
        ];
      state "UpdOrAck"
        [
          tau "fanout" ~cond:(not_ (is_empty (v "todo"))) ~goto:"Upd";
          tau "solo" ~cond:(is_empty (v "todo")) ~goto:"WAck";
        ];
      (* propagate the new value to every other sharer; late writes pile
         onto the deferred set; evictions shrink the round.  A mid-round
         eviction cannot empty [sh]: the writer itself stays a sharer and
         cannot evict while waiting. *)
      state "Upd"
        ([
           send_to (v "j") "upd" [ v "vl" ]
             ~choose:[ ("j", v "todo") ]
             ~goto:"UW";
           recv_any "x" "wr" []
             ~assigns:[ ("pend", v "pend" +~ v "x"); ("x", rid 0) ]
             ~goto:"Upd";
         ]
        @ [
            recv_any "x" "relS" []
              ~cond:(not_ (is_empty (v "todo" -~ v "x")))
              ~assigns:
                [
                  ("sh", v "sh" -~ v "x");
                  ("todo", v "todo" -~ v "x");
                  ("x", rid 0);
                ]
              ~goto:"Upd";
            recv_any "x" "relS" []
              ~cond:(is_empty (v "todo" -~ v "x"))
              ~assigns:
                [
                  ("sh", v "sh" -~ v "x");
                  ("todo", empty_set);
                  ("x", rid 0);
                ]
              ~goto:"WAck";
          ]);
      state "UW"
        [
          recv_from (v "j") "updAck" []
            ~assigns:[ ("todo", v "todo" -~ v "j"); ("j", rid 0) ]
            ~goto:"UD";
        ];
      state "UD"
        [
          tau "more" ~cond:(not_ (is_empty (v "todo"))) ~goto:"Upd";
          tau "done" ~cond:(is_empty (v "todo")) ~goto:"WAck";
        ];
      state "WAck"
        [ send_to (v "w") "wrAck" [ v "vl" ] ~assigns:[ ("w", rid 0) ] ~goto:"WCheck" ];
    ]

let remote =
  process "remote"
    ~vars:[ ("vl", Value.Drid) ]
    ~init:"I"
    [
      state "I" [ tau "read" ~goto:"IwS" ];
      state "IwS" [ send_home "reqS" [] ~goto:"WgS" ];
      state "WgS" [ recv_home "grS" [ "vl" ] ~goto:"S" ];
      state "S"
        [
          tau "evict" ~goto:"SRel";
          tau "write" ~assigns:[ ("vl", self) ] ~goto:"WSend";
          recv_home "upd" [ "vl" ] ~goto:"UAck";
        ];
      state "UAck" [ send_home "updAck" [] ~goto:"S" ];
      state "SRel" [ send_home "relS" [] ~assigns:[ ("vl", rid 0) ] ~goto:"I" ];
      state "WSend" [ send_home "wr" [] ~goto:"WWait" ];
      (* the writer keeps serving earlier writers' updates while its own
         round is deferred — otherwise the system would deadlock *)
      state "WWait"
        [
          recv_home "wrAck" [ "vl" ] ~goto:"S";
          recv_home "upd" [ "vl" ] ~goto:"WUAck";
        ];
      state "WUAck" [ send_home "updAck" [] ~goto:"WWait" ];
    ]

let system = Dsl.system "write-update" ~home ~remote

(* Quiescence: nothing in flight or buffered anywhere, every node in a
   plain communication mode. *)
let quiescent (st : Async.state) =
  Array.for_all (( = ) []) st.Async.to_h
  && Array.for_all (( = ) []) st.Async.to_r
  && st.Async.h.h_buf = []
  && st.Async.h.h_mode = Async.Hcomm
  && Array.for_all
       (fun (r : Async.remote) -> r.r_mode = Async.Rcomm && r.r_buf = None)
       st.Async.r

let rv_invariants prog =
  let open Props in
  [
    ( "sharers_recorded",
      fun st ->
        let sh = rv_home_var prog "sh" st in
        forall_remotes prog.Prog.n (fun i ->
            (not (Value.set_mem i sh))
            || List.mem (rv_remote_ctl prog st i)
                 [ "S"; "UAck"; "WSend"; "WWait"; "WUAck"; "SRel" ]) );
    (* once a round finishes and no writes are pending, passive sharers
       agree with the home *)
    ( "settled_sharers_agree",
      fun st ->
        (not (rv_home_in prog [ "Sh"; "ShG"; "F"; "FgS" ] st))
        || (not (Value.set_is_empty (rv_home_var prog "pend" st)))
        || forall_remotes prog.Prog.n (fun i ->
               rv_remote_ctl prog st i <> "S"
               || Value.equal
                    st.Ccr_semantics.Rendezvous.r.(i).env.(
                      Prog.var_index prog.remote "vl")
                    (rv_home_var prog "vl" st)) );
  ]

let async_invariants prog =
  let open Props in
  [
    ( "sharers_recorded",
      fun st ->
        let sh = as_home_var prog "sh" st in
        forall_remotes prog.Prog.n (fun i ->
            (not (Value.set_mem i sh))
            || List.mem (as_remote_ctl prog st i)
                 [ "S"; "UAck"; "WSend"; "WWait"; "WUAck"; "SRel" ]
            (* a freshly recorded sharer whose grant is still in flight *)
            || (match st.Async.r.(i).r_mode with
               | Async.Rwait _ -> true
               | _ -> false)) );
    (* the headline coherence property of an update protocol: at
       quiescence all copies agree *)
    ( "quiescent_copies_agree",
      fun st ->
        (not (quiescent st))
        || (not (as_home_in prog [ "Sh"; "F" ] st))
        || (not (Value.set_is_empty (as_home_var prog "pend" st)))
        || forall_remotes prog.Prog.n (fun i ->
               as_remote_ctl prog st i <> "S"
               || Value.equal
                    st.Async.r.(i).r_env.(Prog.var_index prog.remote "vl")
                    (as_home_var prog "vl" st)) );
  ]
