open Ccr_core
open Ccr_semantics
open Ccr_refine

let count p n f =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if f i then incr c
  done;
  ignore p;
  !c

let rv_remote_ctl (prog : Prog.t) (st : Rendezvous.state) i =
  prog.remote.p_states.(st.r.(i).ctl).cs_name

let rv_remotes_in prog names (st : Rendezvous.state) =
  count prog (Array.length st.r) (fun i ->
      List.mem (rv_remote_ctl prog st i) names)

let rv_home_in (prog : Prog.t) names (st : Rendezvous.state) =
  List.mem prog.home.p_states.(st.h.ctl).cs_name names

let rv_home_var (prog : Prog.t) x (st : Rendezvous.state) =
  st.h.env.(Prog.var_index prog.home x)

let as_remote_ctl (prog : Prog.t) (st : Async.state) i =
  prog.remote.p_states.(st.r.(i).r_ctl).cs_name

let as_remotes_in prog names (st : Async.state) =
  count prog (Array.length st.r) (fun i ->
      List.mem (as_remote_ctl prog st i) names)

let as_home_in (prog : Prog.t) names (st : Async.state) =
  List.mem prog.home.p_states.(st.h.h_ctl).cs_name names

let as_home_var (prog : Prog.t) x (st : Async.state) =
  st.h.h_env.(Prog.var_index prog.home x)

let as_home_idle (st : Async.state) =
  match st.h.h_mode with Async.Hcomm -> true | Async.Htrans _ -> false

let as_home_transient_peer (st : Async.state) =
  match st.h.h_mode with
  | Async.Hcomm -> None
  | Async.Htrans { peer; _ } -> Some peer

let forall_remotes n f =
  let rec loop i = i >= n || (f i && loop (i + 1)) in
  loop 0
