open Ccr_core
open Ccr_semantics
open Ccr_refine

type t = {
  name : string;
  doc : string;
  system : Ir.system option;
  instantiate : reqrep:bool -> n:int -> Prog.t;
  rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list;
  async_invariants : Prog.t -> (string * (Async.state -> bool)) list;
}

let of_system ?(rv = fun _ -> []) ?(asy = fun _ -> []) name doc sys =
  {
    name;
    doc;
    system = Some sys;
    instantiate = (fun ~reqrep ~n -> Link.compile ~reqrep ~n sys);
    rv_invariants = rv;
    async_invariants = asy;
  }

let all =
  [
    of_system "migratory"
      "the Avalanche migratory protocol (paper Figures 2-3)"
      (Migratory.system ())
      ~rv:Migratory.rv_invariants ~asy:Migratory.async_invariants;
    of_system "migratory-data"
      "migratory carrying the cache line's contents (last-writer id)"
      (Migratory.system ~with_data:true ())
      ~rv:Migratory.rv_invariants ~asy:Migratory.async_invariants;
    {
      name = "migratory-hand";
      doc =
        "the Avalanche team's hand-designed migratory protocol (unacked \
         LR, paper §5); no rendezvous level";
      system = None;
      instantiate = (fun ~reqrep:_ ~n -> Migratory_hand.prog ~n ());
      rv_invariants = (fun _ -> []);
      async_invariants = Migratory_hand.async_invariants;
    };
    of_system "invalidate"
      "the Avalanche invalidate protocol (multi-reader/single-writer, \
       reconstructed)"
      Invalidate.system ~rv:Invalidate.rv_invariants
      ~asy:Invalidate.async_invariants;
    of_system "mesi"
      "MESI: invalidate plus an Exclusive-clean state with silent E->M \
       upgrade and a downgrade path"
      Mesi.system ~rv:Mesi.rv_invariants ~asy:Mesi.async_invariants;
    of_system "write-update"
      "write-update: writes broadcast to sharers, deferred-writer \
       serialization, quiescent copies agree"
      Write_update.system ~rv:Write_update.rv_invariants
      ~asy:Write_update.async_invariants;
    of_system "lock"
      "a mutual-exclusion lock server (quickstart protocol)"
      Lock_server.system ~rv:Lock_server.rv_invariants
      ~asy:Lock_server.async_invariants;
    of_system "barrier"
      "barrier synchronization (choose-driven release loop, generic \
       refinement path)"
      Barrier.system ~rv:Barrier.rv_invariants ~asy:Barrier.async_invariants;
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
