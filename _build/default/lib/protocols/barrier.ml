open Ccr_core
open Ccr_refine
open Dsl

let home =
  process "home"
    ~vars:[ ("s", Value.Dset); ("x", Value.Drid); ("j", Value.Drid) ]
    ~init:"C"
    [
      (* collect arrivals until everyone is in *)
      state "C"
        [
          recv_any "x" "arrive" []
            ~cond:(not_ (v "s" +~ v "x" ==~ full_set))
            ~assigns:[ ("s", v "s" +~ v "x"); ("x", rid 0) ]
            ~goto:"C";
          recv_any "x" "arrive" []
            ~cond:(v "s" +~ v "x" ==~ full_set)
            ~assigns:[ ("s", v "s" +~ v "x"); ("x", rid 0) ]
            ~goto:"R";
        ];
      (* release everyone, in any order *)
      state "R"
        [
          send_to (v "j") "go" []
            ~choose:[ ("j", v "s") ]
            ~cond:(not_ (is_empty (v "s" -~ v "j")))
            ~assigns:[ ("s", v "s" -~ v "j") ]
            ~goto:"R";
          send_to (v "j") "go" []
            ~choose:[ ("j", v "s") ]
            ~cond:(is_empty (v "s" -~ v "j"))
            ~assigns:[ ("s", empty_set); ("j", rid 0) ]
            ~goto:"C";
        ];
    ]

let remote =
  process "remote" ~vars:[] ~init:"T"
    [
      state "T" [ tau "work" ~goto:"A" ];
      state "A" [ send_home "arrive" [] ~goto:"W" ];
      state "W" [ recv_home "go" [] ~goto:"P" ];
      state "P" [ tau "proceed" ~goto:"T" ];
    ]

let system = Dsl.system "barrier" ~home ~remote

let rv_invariants prog =
  let open Props in
  [
    (* the release phase starts with everyone arrived and never runs dry *)
    ( "release_not_dry",
      fun st ->
        (not (rv_home_in prog [ "R" ] st))
        || not (Value.set_is_empty (rv_home_var prog "s" st)) );
    (* a remote recorded as arrived is still waiting *)
    ( "recorded_means_waiting",
      fun st ->
        let s = rv_home_var prog "s" st in
        forall_remotes prog.Prog.n (fun i ->
            (not (Value.set_mem i s)) || rv_remote_ctl prog st i = "W") );
  ]

let async_invariants prog =
  let open Props in
  [
    ( "release_not_dry",
      fun st ->
        (not (as_home_in prog [ "R" ] st))
        || not (Value.set_is_empty (as_home_var prog "s" st)) );
    (* a remote observed waiting is either recorded as arrived or its
       release is already on the wire (the record is cleared only when
       the go's ack comes back) *)
    ( "waiting_means_recorded_or_released",
      fun st ->
        let s = as_home_var prog "s" st in
        let go_in_flight i =
          List.exists
            (function
              | Wire.Req m -> m.Wire.m_name = "go"
              | Wire.Ack | Wire.Nack -> false)
            st.Async.to_r.(i)
          ||
          match st.Async.r.(i).r_buf with
          | Some m -> m.Wire.m_name = "go"
          | None -> false
        in
        forall_remotes prog.Prog.n (fun i ->
            as_remote_ctl prog st i <> "W"
            || Value.set_mem i s
            || go_in_flight i) );
  ]
