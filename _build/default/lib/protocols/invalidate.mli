(** The invalidate protocol — the second Avalanche DSM protocol measured
    in the paper's Table 3.

    The paper gives no figure for it, so this is a reconstruction of a
    standard DSM invalidate protocol in the paper's rendezvous notation:
    multiple remotes may share the line read-only ([S]); one remote may
    own it for writing ([M]); on a write request the home invalidates
    every sharer in turn (a [choose]-driven loop over the sharer set)
    before granting; sharers may spontaneously evict ([relS]), the owner
    may write back ([relM]).

    Its directory state (a sharer set) makes its state space much larger
    than migratory's, which is the shape Table 3 reports (invalidate rows
    explode at smaller [n]).

    Request/reply pairs found by the analysis: [reqS]/[grS],
    [reqM]/[grM] (remote-initiated) and [inv]/[ID] (home-initiated);
    [relS] and [relM] remain request+ack. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : Ir.system

val rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list
(** Single-writer/multi-reader coherence, and soundness of the home's
    sharer set. *)

val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
