(** A write-update protocol: writes are broadcast, nobody is invalidated.

    Readers join a sharer set; a sharer writes by sending its new value
    to the home ([wr]), which propagates it to every other sharer
    ([upd]/[updAck]) before acknowledging the writer ([wrAck]).  The
    home serializes concurrent writes through a {e deferred-writer set}:
    a [wr] arriving mid-propagation is absorbed into [pend] and served
    in a later round (the value travels as the writer's identity, like
    the data-carrying migratory variant).  Writers must stay receptive
    to updates while waiting for their own acknowledgment — the deadlock
    that would otherwise arise is exactly Table 2's condition (c) at
    work, and shaped this protocol (see DESIGN.md).

    The line's value is modeled as the last writer's identity, giving a
    checkable coherence property: whenever the system is quiescent,
    every sharer's copy equals the home's. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : Ir.system

val rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list
val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
