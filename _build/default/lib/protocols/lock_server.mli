(** A minimal mutual-exclusion protocol in the paper's star shape.

    Not a cache protocol, but the smallest useful instance of the
    refinement framework: remotes acquire and release a lock held at the
    home.  Used as the quickstart example and as a tiny test vehicle;
    its rendezvous state space is small enough to enumerate by hand. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : Ir.system

val rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list
(** Mutual exclusion: at most one remote in its critical section, and the
    home is unlocked only when nobody is. *)

val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
