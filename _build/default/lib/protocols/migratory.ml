open Ccr_core
open Dsl

(* Figure 2: the home node.  [o] is the current owner, [j] the pending
   requester.  Variables are reset on the way back to [F] so that dead
   values do not inflate the state count. *)
let home ~with_data =
  let data = if with_data then [ v "d" ] else [] in
  let data_vars = if with_data then [ "d" ] else [] in
  let vars =
    [ ("o", Value.Drid); ("j", Value.Drid) ]
    @ if with_data then [ ("d", Value.Drid) ] else []
  in
  process "home" ~vars ~init:"F"
    [
      state "F" [ recv_any "j" "req" [] ~goto:"Fg" ];
      state "Fg"
        [ send_to (v "j") "gr" data ~assigns:[ ("o", v "j") ] ~goto:"E" ];
      state "E"
        [
          recv_from (v "o") "LR" data_vars
            ~assigns:[ ("o", rid 0); ("j", rid 0) ]
            ~goto:"F";
          recv_any "j" "req" [] ~goto:"I1";
        ];
      state "I1"
        [
          send_to (v "o") "inv" [] ~goto:"I2";
          recv_from (v "o") "LR" data_vars ~goto:"I3";
        ];
      state "I2" [ recv_from (v "o") "ID" data_vars ~goto:"I3" ];
      state "I3"
        [ send_to (v "j") "gr" data ~assigns:[ ("o", v "j") ] ~goto:"E" ];
    ]

(* Figure 3: the remote node.  [rw] is the CPU requesting access, [evict]
   a capacity eviction. *)
let remote ~with_data =
  let data = if with_data then [ v "d" ] else [] in
  let data_vars = if with_data then [ "d" ] else [] in
  let reset = if with_data then [ ("d", rid 0) ] else [] in
  let write_tau =
    if with_data then [ tau "write" ~assigns:[ ("d", self) ] ~goto:"V" ]
    else []
  in
  let vars = if with_data then [ ("d", Value.Drid) ] else [] in
  (* Figure 3's [rw] edge and the request it triggers form one atomic
     decision (in the paper's SPIN model they are a single statement):
     state [I] offers the request directly, and the nondeterministic
     moment at which the rendezvous fires models the CPU's timing.  An
     explicit idle state would multiply the rendezvous state space by
     2^n for no behavioral difference. *)
  process "remote" ~vars ~init:"I"
    [
      state "I" [ send_home "req" [] ~goto:"Wg" ];
      state "Wg" [ recv_home "gr" data_vars ~goto:"V" ];
      state "V"
        ([ tau "evict" ~goto:"Ev"; recv_home "inv" [] ~goto:"Iv" ]
        @ write_tau);
      state "Ev" [ send_home "LR" data ~assigns:reset ~goto:"I" ];
      state "Iv" [ send_home "ID" data ~assigns:reset ~goto:"I" ];
    ]

let system ?(with_data = false) () =
  Dsl.system
    (if with_data then "migratory-data" else "migratory")
    ~home:(home ~with_data) ~remote:(remote ~with_data)

(* A remote has read/write permission exactly in [V]. *)
let holding = [ "V" ]

let rv_invariants prog =
  let open Props in
  [
    ("single_holder", fun st -> rv_remotes_in prog holding st <= 1);
    ( "free_means_unheld",
      fun st ->
        (not (rv_home_in prog [ "F"; "Fg" ] st))
        || rv_remotes_in prog holding st = 0 );
    ( "holder_is_owner",
      fun st ->
        forall_remotes prog.n (fun i ->
            rv_remote_ctl prog st i <> "V"
            || rv_home_in prog [ "E"; "I1"; "I2" ] st
               && rv_home_var prog "o" st = Value.Vrid i) );
  ]

let async_invariants prog =
  let open Props in
  [
    ("single_holder", fun st -> as_remotes_in prog holding st <= 1);
    (* under the generic (ack-based) scheme the grantee enters [V] while
       the home still waits in [Fg]/[I3] for the ack of [gr], so "free"
       only makes sense when the home is idle *)
    ( "free_means_unheld",
      fun st ->
        (not (as_home_in prog [ "F"; "Fg" ] st))
        || (not (as_home_idle st))
        || as_remotes_in prog holding st = 0 );
    ( "holder_is_owner",
      fun st ->
        forall_remotes prog.n (fun i ->
            as_remote_ctl prog st i <> "V"
            || as_home_in prog [ "E"; "I1"; "I2" ] st
               && as_home_var prog "o" st = Value.Vrid i
            || as_home_in prog [ "Fg"; "I3" ] st
               && as_home_transient_peer st = Some i) );
  ]
