(** The catalogue of shipped protocols, for the CLI and the examples.

    Each entry bundles a rendezvous specification (absent for
    hand-optimized variants, which only exist below the rendezvous level)
    with its instantiation function and per-level coherence invariants. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

type t = {
  name : string;
  doc : string;
  system : Ir.system option;  (** [None] for hand-optimized variants *)
  instantiate : reqrep:bool -> n:int -> Prog.t;
  rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list;
  async_invariants : Prog.t -> (string * (Async.state -> bool)) list;
}

val all : t list
val find : string -> t option
val names : unit -> string list
