open Ccr_core
open Dsl

let tt = Expr.Const (Value.Vbool true)
let ff = Expr.Const (Value.Vbool false)

(* Home directory: [o] = exclusive holder (E or M — the home cannot tell,
   E→M upgrades are silent), [sh] = sharers, [t] = pending requester,
   [iv] = invalidation target, [x] = release binder, [d] = dirty-flag
   payload scratch (what a memory controller would consult). *)
let home =
  let vars =
    [
      ("o", Value.Drid); ("t", Value.Drid); ("sh", Value.Dset);
      ("iv", Value.Drid); ("x", Value.Drid); ("d", Value.Dbool);
    ]
  in
  process "home" ~vars ~init:"F"
    [
      state "F"
        [
          recv_any "t" "reqS" [] ~goto:"FgE";
          recv_any "t" "reqM" [] ~goto:"FgM";
        ];
      (* sole reader: grant exclusively (the E of MESI) *)
      state "FgE"
        [
          send_to (v "t") "grS" [ tt ]
            ~assigns:[ ("o", v "t"); ("t", rid 0); ("d", ff) ]
            ~goto:"X";
        ];
      state "FgM"
        [
          send_to (v "t") "grM" []
            ~assigns:[ ("o", v "t"); ("t", rid 0); ("d", ff) ]
            ~goto:"X";
        ];
      (* one exclusive holder *)
      state "X"
        [
          recv_from (v "o") "rel" [ "d" ]
            ~assigns:[ ("o", rid 0); ("d", ff) ]
            ~goto:"F";
          recv_any "t" "reqS" [] ~goto:"XD";
          recv_any "t" "reqM" [] ~goto:"XI";
        ];
      (* a second reader: downgrade the holder, share the line *)
      state "XD"
        [
          send_to (v "o") "down" [] ~goto:"XDW";
          recv_from (v "o") "rel" [ "d" ] ~goto:"FgE";
        ];
      state "XDW"
        [
          recv_from (v "o") "dAck" [ "d" ]
            ~assigns:[ ("sh", Expr.Set_singleton (v "o")); ("o", rid 0) ]
            ~goto:"GrS2";
        ];
      state "GrS2"
        [
          send_to (v "t") "grS" [ ff ]
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0); ("d", ff) ]
            ~goto:"Sh";
        ];
      (* a writer while exclusive: invalidate the holder *)
      state "XI"
        [
          send_to (v "o") "inv" [] ~goto:"XIW";
          recv_from (v "o") "rel" [ "d" ] ~goto:"FgM";
        ];
      state "XIW" [ recv_from (v "o") "ID" [ "d" ] ~goto:"FgM" ];
      (* shared by the remotes in [sh] *)
      state "Sh"
        [
          recv_any "t" "reqS" [] ~goto:"ShG";
          recv_any "t" "reqM" [] ~goto:"Inv";
          recv_any "x" "relS" []
            ~cond:(not_ (is_empty (v "sh" -~ v "x")))
            ~assigns:[ ("sh", v "sh" -~ v "x"); ("x", rid 0) ]
            ~goto:"Sh";
          recv_any "x" "relS" []
            ~cond:(is_empty (v "sh" -~ v "x"))
            ~assigns:[ ("sh", empty_set); ("x", rid 0); ("t", rid 0) ]
            ~goto:"F";
        ];
      state "ShG"
        [
          send_to (v "t") "grS" [ ff ]
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      (* invalidation loop before an exclusive grant *)
      state "Inv"
        [
          send_to (v "iv") "inv" [] ~choose:[ ("iv", v "sh") ] ~goto:"InvW";
          recv_any "x" "relS" []
            ~cond:(not_ (is_empty (v "sh" -~ v "x")))
            ~assigns:[ ("sh", v "sh" -~ v "x"); ("x", rid 0) ]
            ~goto:"Inv";
          recv_any "x" "relS" []
            ~cond:(is_empty (v "sh" -~ v "x"))
            ~assigns:[ ("sh", empty_set); ("x", rid 0) ]
            ~goto:"GrM2";
        ];
      state "InvW"
        [
          recv_from (v "iv") "ID" [ "d" ]
            ~assigns:[ ("sh", v "sh" -~ v "iv"); ("iv", rid 0) ]
            ~goto:"InvD";
        ];
      state "InvD"
        [
          tau "more" ~cond:(not_ (is_empty (v "sh"))) ~goto:"Inv";
          tau "done" ~cond:(is_empty (v "sh")) ~goto:"GrM2";
        ];
      state "GrM2"
        [
          send_to (v "t") "grM" []
            ~assigns:[ ("o", v "t"); ("t", rid 0); ("d", ff) ]
            ~goto:"X";
        ];
    ]

let remote =
  process "remote"
    ~vars:[ ("x", Value.Dbool) ]
    ~init:"I"
    [
      state "I" [ tau "read" ~goto:"IwS"; tau "write" ~goto:"IwM" ];
      state "IwS" [ send_home "reqS" [] ~goto:"WgS" ];
      state "WgS" [ recv_home "grS" [ "x" ] ~goto:"Dec" ];
      (* the exclusive flag decides E vs S after the unconditional wait *)
      state "Dec"
        [
          tau "toE" ~cond:(v "x" ==~ tt) ~goto:"E";
          tau "toS" ~cond:(v "x" ==~ ff) ~goto:"S";
        ];
      state "E"
        [
          (* the MESI upgrade: no message at all *)
          tau "write_hit" ~goto:"M";
          tau "evict" ~goto:"ERel";
          recv_home "inv" [] ~goto:"EInv";
          recv_home "down" [] ~goto:"EDn";
        ];
      state "M"
        [
          tau "evict" ~goto:"MRel";
          recv_home "inv" [] ~goto:"MInv";
          recv_home "down" [] ~goto:"MDn";
        ];
      state "ERel" [ send_home "rel" [ ff ] ~goto:"I" ];
      state "MRel" [ send_home "rel" [ tt ] ~goto:"I" ];
      state "EInv" [ send_home "ID" [ ff ] ~goto:"I" ];
      state "MInv" [ send_home "ID" [ tt ] ~goto:"I" ];
      state "EDn" [ send_home "dAck" [ ff ] ~goto:"S" ];
      state "MDn" [ send_home "dAck" [ tt ] ~goto:"S" ];
      state "S" [ tau "evict" ~goto:"SRel"; recv_home "inv" [] ~goto:"SInv" ];
      state "SRel" [ send_home "relS" [] ~goto:"I" ];
      state "SInv" [ send_home "ID" [ ff ] ~goto:"I" ];
      state "IwM" [ send_home "reqM" [] ~goto:"WgM" ];
      state "WgM" [ recv_home "grM" [] ~goto:"M" ];
    ]

let system = Dsl.system "mesi" ~home ~remote

let exclusive = [ "E"; "M" ]
let readers = [ "S" ]

let rv_invariants prog =
  let open Props in
  [
    ( "single_exclusive",
      fun st -> rv_remotes_in prog exclusive st <= 1 );
    ( "exclusive_excludes_readers",
      fun st ->
        rv_remotes_in prog exclusive st = 0
        || rv_remotes_in prog readers st = 0 );
    ( "free_means_unheld",
      fun st ->
        (not (rv_home_in prog [ "F"; "FgE"; "FgM" ] st))
        || rv_remotes_in prog (exclusive @ readers) st = 0 );
    ( "modified_implies_exclusive_dir",
      fun st ->
        rv_remotes_in prog [ "M" ] st = 0
        || rv_home_in prog [ "X"; "XD"; "XDW"; "XI"; "XIW" ] st );
    ( "sharers_recorded",
      fun st ->
        let sh = rv_home_var prog "sh" st in
        forall_remotes prog.Prog.n (fun i ->
            rv_remote_ctl prog st i <> "S" || Value.set_mem i sh) );
  ]

let async_invariants prog =
  let open Props in
  [
    ( "single_exclusive",
      fun st -> as_remotes_in prog exclusive st <= 1 );
    ( "exclusive_excludes_readers",
      fun st ->
        as_remotes_in prog exclusive st = 0
        || as_remotes_in prog readers st = 0 );
    ( "free_means_unheld",
      fun st ->
        (not (as_home_in prog [ "F"; "FgE"; "FgM" ] st))
        || (not (as_home_idle st))
        || as_remotes_in prog (exclusive @ readers) st = 0 );
    ( "modified_implies_exclusive_dir",
      fun st ->
        as_remotes_in prog [ "M" ] st = 0
        || as_home_in prog [ "X"; "XD"; "XDW"; "XI"; "XIW" ] st );
    ( "sharers_recorded",
      fun st ->
        let sh = as_home_var prog "sh" st in
        forall_remotes prog.Prog.n (fun i ->
            as_remote_ctl prog st i <> "S"
            || Value.set_mem i sh
            || as_home_transient_peer st = Some i
            || as_home_in prog [ "XDW"; "GrS2" ] st ) );
  ]
