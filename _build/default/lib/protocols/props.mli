(** Helpers for writing protocol invariants at both semantic levels.

    Invariants are plain predicates over global states.  The same logical
    property is usually checked on the rendezvous system and on the
    refined asynchronous system; these helpers give both phrasings access
    to control states (by name) and variables. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

(** {2 Rendezvous-level accessors} *)

val rv_remotes_in : Prog.t -> string list -> Rendezvous.state -> int
(** How many remotes' control state has one of the given names. *)

val rv_home_in : Prog.t -> string list -> Rendezvous.state -> bool
val rv_home_var : Prog.t -> string -> Rendezvous.state -> Value.t
val rv_remote_ctl : Prog.t -> Rendezvous.state -> int -> string

(** {2 Asynchronous-level accessors}

    A transient process' control state is its underlying communication
    state (the refinement does not change it until the rendezvous
    completes), so the same state names apply. *)

val as_remotes_in : Prog.t -> string list -> Async.state -> int
val as_home_in : Prog.t -> string list -> Async.state -> bool
val as_home_var : Prog.t -> string -> Async.state -> Value.t
val as_remote_ctl : Prog.t -> Async.state -> int -> string

val as_home_idle : Async.state -> bool
(** True when the home is not mid-rendezvous (mode [Hcomm]).  Useful for
    invariants that only make sense between transactions. *)

val as_home_transient_peer : Async.state -> int option
(** The remote the home is awaiting, when transient. *)

(** {2 Combinators} *)

val forall_remotes : int -> (int -> bool) -> bool
