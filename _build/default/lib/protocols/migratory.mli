(** The migratory protocol of the Avalanche DSM machine (paper §5,
    Figures 2 and 3).

    A single cache line migrates between remote nodes: the home grants
    exclusive access to one remote at a time ([gr]), revokes it when
    another remote asks ([inv]/[ID]) and accepts voluntary relinquishment
    ([LR]).  The request/reply analysis finds the pairs [req]/[gr]
    (remote-initiated) and [inv]/[ID] (home-initiated), so the refined
    protocol exchanges two messages for those rendezvous and
    request+ack for [LR] — exactly the refined automata of Figures 4
    and 5.

    [~with_data:true] makes the messages carry the cache-line contents,
    modeled as the identity of the last writer: remotes in [V] may
    execute a [write] tau setting their copy to [Self], and [gr], [LR]
    and [ID] move the value around, as in the paper's [gr(data)].  The
    default is the payload-free model, which is what Table 3 measures. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : ?with_data:bool -> unit -> Ir.system

val rv_invariants :
  Prog.t -> (string * (Rendezvous.state -> bool)) list
(** Coherence at the rendezvous level: at most one remote holds the line
    ([V], or draining through [Ev]/[Iv]); nobody holds it when the home
    is free; a remote with read/write permission ([V]) is the home's
    recorded owner. *)

val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
(** The same properties phrased for the refined protocol. *)
