lib/protocols/props.mli: Async Ccr_core Ccr_refine Ccr_semantics Prog Rendezvous Value
