lib/protocols/lock_server.mli: Async Ccr_core Ccr_refine Ccr_semantics Ir Prog Rendezvous
