lib/protocols/registry.ml: Async Barrier Ccr_core Ccr_refine Ccr_semantics Invalidate Ir Link List Lock_server Mesi Migratory Migratory_hand Prog Rendezvous Write_update
