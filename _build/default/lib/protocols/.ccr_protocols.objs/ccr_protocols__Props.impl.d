lib/protocols/props.ml: Array Async Ccr_core Ccr_refine Ccr_semantics List Prog Rendezvous
