lib/protocols/migratory_hand.mli: Async Ccr_core Ccr_refine Prog
