lib/protocols/barrier.ml: Array Async Ccr_core Ccr_refine Dsl List Prog Props Value Wire
