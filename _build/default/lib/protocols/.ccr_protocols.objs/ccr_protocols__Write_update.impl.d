lib/protocols/write_update.ml: Array Async Ccr_core Ccr_refine Ccr_semantics Dsl List Prog Props Value
