lib/protocols/invalidate.ml: Ccr_core Dsl Expr Props Value
