lib/protocols/write_update.mli: Async Ccr_core Ccr_refine Ccr_semantics Ir Prog Rendezvous
