lib/protocols/lock_server.ml: Ccr_core Dsl Props Value
