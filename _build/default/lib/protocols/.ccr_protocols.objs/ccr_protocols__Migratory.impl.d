lib/protocols/migratory.ml: Ccr_core Dsl Props Value
