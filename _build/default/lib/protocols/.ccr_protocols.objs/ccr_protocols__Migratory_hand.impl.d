lib/protocols/migratory_hand.ml: Ccr_core Link Migratory
