lib/protocols/mesi.ml: Ccr_core Dsl Expr Prog Props Value
