lib/protocols/registry.mli: Async Ccr_core Ccr_refine Ccr_semantics Ir Prog Rendezvous
