(** The hand-designed Avalanche migratory protocol (paper §5).

    The Avalanche architecture team's asynchronous migratory protocol
    differs from the refined one in exactly one way: no ack is exchanged
    after an [LR] message (the dotted edges of Figures 4–5 are not
    taken).  The relinquishing remote moves on immediately and the home
    must always accept an [LR] — a designer-level insight the mechanical
    refinement cannot make, obtained here with {!Link.compile}'s
    [fire_and_forget].

    The paper left quantifying the difference as future work; the
    message-efficiency bench compares this protocol against the refined
    one.  Note that the soundness argument (Eq. 1) does {e not} apply to
    hand-modified protocols; its coherence invariants are model-checked
    directly instead. *)

open Ccr_core
open Ccr_refine

val prog : ?with_data:bool -> n:int -> unit -> Prog.t
(** The hand-optimized protocol, ready to execute (there is no rendezvous
    counterpart: the modification lives below the rendezvous level). *)

val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
