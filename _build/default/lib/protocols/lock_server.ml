open Ccr_core
open Dsl

let home =
  process "lock_home" ~vars:[ ("c", Value.Drid) ] ~init:"U"
    [
      state "U" [ recv_any "c" "acq" [] ~goto:"G" ];
      state "G" [ send_to (v "c") "grant" [] ~goto:"L" ];
      state "L" [ recv_from (v "c") "rel" [] ~assigns:[ ("c", rid 0) ] ~goto:"U" ];
    ]

let remote =
  process "lock_remote" ~vars:[] ~init:"T"
    [
      state "T" [ tau "work" ~goto:"A" ];
      state "A" [ send_home "acq" [] ~goto:"W" ];
      state "W" [ recv_home "grant" [] ~goto:"C" ];
      state "C" [ tau "done" ~goto:"R" ];
      state "R" [ send_home "rel" [] ~goto:"T" ];
    ]

let system = Dsl.system "lock-server" ~home ~remote

let rv_invariants prog =
  let open Props in
  [
    ("mutual_exclusion", fun st -> rv_remotes_in prog [ "C" ] st <= 1);
    ( "unlocked_means_uncritical",
      fun st ->
        (not (rv_home_in prog [ "U"; "G" ] st))
        || rv_remotes_in prog [ "C"; "R" ] st = 0 );
  ]

let async_invariants prog =
  let open Props in
  [
    ("mutual_exclusion", fun st -> as_remotes_in prog [ "C" ] st <= 1);
    (* [R] is excluded here: a remote sits in [R] until the ack of its
       [rel] arrives, by which time the home may already be unlocked *)
    ( "unlocked_means_uncritical",
      fun st ->
        (not (as_home_in prog [ "U"; "G" ] st))
        || as_remotes_in prog [ "C" ] st = 0 );
  ]
