open Ccr_core
open Dsl

(* Home directory state: [sh] = sharer set, [o] = owner (meaningful in the
   M-family states), [t] = pending requester, [iv] = sharer currently
   being invalidated, [x] = binder for spontaneous releases. *)
let home =
  let vars =
    [
      ("sh", Value.Dset);
      ("o", Value.Drid);
      ("t", Value.Drid);
      ("iv", Value.Drid);
      ("x", Value.Drid);
    ]
  in
  let reset_reader = [ ("x", rid 0) ] in
  process "home" ~vars ~init:"F"
    [
      (* line unused *)
      state "F"
        [
          recv_any "t" "reqS" [] ~goto:"FgS";
          recv_any "t" "reqM" [] ~goto:"FgM";
        ];
      state "FgS"
        [
          send_to (v "t") "grS" []
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      state "FgM"
        [ send_to (v "t") "grM" [] ~assigns:[ ("o", v "t"); ("t", rid 0) ] ~goto:"M" ];
      (* shared by the remotes in [sh] *)
      state "Sh"
        [
          recv_any "t" "reqS" [] ~goto:"ShG";
          recv_any "t" "reqM" [] ~goto:"Inv";
          recv_any "x" "relS" []
            ~cond:(not_ (is_empty (v "sh" -~ v "x")))
            ~assigns:(("sh", v "sh" -~ v "x") :: reset_reader)
            ~goto:"Sh";
          recv_any "x" "relS" []
            ~cond:(is_empty (v "sh" -~ v "x"))
            ~assigns:([ ("sh", empty_set); ("t", rid 0) ] @ reset_reader)
            ~goto:"F";
        ];
      state "ShG"
        [
          send_to (v "t") "grS" []
            ~assigns:[ ("sh", v "sh" +~ v "t"); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      (* invalidation loop: revoke every sharer, then grant M to [t] *)
      state "Inv"
        [
          send_to (v "iv") "inv" [] ~choose:[ ("iv", v "sh") ] ~goto:"InvW";
          recv_any "x" "relS" []
            ~cond:(not_ (is_empty (v "sh" -~ v "x")))
            ~assigns:(("sh", v "sh" -~ v "x") :: reset_reader)
            ~goto:"Inv";
          recv_any "x" "relS" []
            ~cond:(is_empty (v "sh" -~ v "x"))
            ~assigns:(("sh", empty_set) :: reset_reader)
            ~goto:"Grant";
        ];
      (* the reply wait must be unconditional for the inv/ID pair to be
         recognized; the empty-set test happens in the internal state
         [InvD] that follows *)
      state "InvW"
        [
          recv_from (v "iv") "ID" []
            ~assigns:[ ("sh", v "sh" -~ v "iv"); ("iv", rid 0) ]
            ~goto:"InvD";
        ];
      state "InvD"
        [
          tau "more" ~cond:(not_ (is_empty (v "sh"))) ~goto:"Inv";
          tau "done" ~cond:(is_empty (v "sh")) ~goto:"Grant";
        ];
      state "Grant"
        [
          send_to (v "t") "grM" []
            ~assigns:[ ("o", v "t"); ("iv", rid 0); ("t", rid 0) ]
            ~goto:"M";
        ];
      (* owned exclusively by [o] *)
      state "M"
        [
          recv_from (v "o") "relM" []
            ~assigns:[ ("o", rid 0); ("t", rid 0) ]
            ~goto:"F";
          recv_any "t" "reqS" [] ~goto:"MwS";
          recv_any "t" "reqM" [] ~goto:"MwM";
        ];
      state "MwS"
        [
          send_to (v "o") "inv" [] ~goto:"MwSW";
          recv_from (v "o") "relM" [] ~goto:"GrantS";
        ];
      state "MwSW" [ recv_from (v "o") "ID" [] ~goto:"GrantS" ];
      state "GrantS"
        [
          send_to (v "t") "grS" []
            ~assigns:
              [ ("sh", Expr.Set_singleton (v "t")); ("o", rid 0); ("t", rid 0) ]
            ~goto:"Sh";
        ];
      state "MwM"
        [
          send_to (v "o") "inv" [] ~goto:"MwMW";
          recv_from (v "o") "relM" [] ~goto:"Grant";
        ];
      state "MwMW" [ recv_from (v "o") "ID" [] ~goto:"Grant" ];
    ]

let remote =
  process "remote" ~vars:[] ~init:"I"
    [
      state "I" [ tau "read" ~goto:"IwS"; tau "write" ~goto:"IwM" ];
      state "IwS" [ send_home "reqS" [] ~goto:"WgS" ];
      state "WgS" [ recv_home "grS" [] ~goto:"S" ];
      state "S" [ tau "evict" ~goto:"SRel"; recv_home "inv" [] ~goto:"SId" ];
      state "SRel" [ send_home "relS" [] ~goto:"I" ];
      state "SId" [ send_home "ID" [] ~goto:"I" ];
      state "IwM" [ send_home "reqM" [] ~goto:"WgM" ];
      state "WgM" [ recv_home "grM" [] ~goto:"M" ];
      state "M" [ tau "evict" ~goto:"MRel"; recv_home "inv" [] ~goto:"MId" ];
      state "MRel" [ send_home "relM" [] ~goto:"I" ];
      state "MId" [ send_home "ID" [] ~goto:"I" ];
    ]

let system = Dsl.system "invalidate" ~home ~remote

let readers = [ "S" ]
let writers = [ "M" ]

let rv_invariants prog =
  let open Props in
  [
    ("single_writer", fun st -> rv_remotes_in prog writers st <= 1);
    ( "writer_excludes_readers",
      fun st ->
        rv_remotes_in prog writers st = 0
        || rv_remotes_in prog readers st = 0 );
    ( "free_means_unheld",
      fun st ->
        (not (rv_home_in prog [ "F"; "FgS"; "FgM" ] st))
        || rv_remotes_in prog (readers @ writers) st = 0 );
    ( "sharers_recorded",
      fun st ->
        let sh = rv_home_var prog "sh" st in
        forall_remotes prog.n (fun i ->
            rv_remote_ctl prog st i <> "S" || Value.set_mem i sh) );
  ]

let async_invariants prog =
  let open Props in
  [
    ("single_writer", fun st -> as_remotes_in prog writers st <= 1);
    ( "writer_excludes_readers",
      fun st ->
        as_remotes_in prog writers st = 0
        || as_remotes_in prog readers st = 0 );
    (* both weakened to idle-home situations: under the generic scheme a
       grantee enters its new state while the home still waits for the
       ack of the grant *)
    ( "free_means_unheld",
      fun st ->
        (not (as_home_in prog [ "F"; "FgS"; "FgM" ] st))
        || (not (as_home_idle st))
        || as_remotes_in prog (readers @ writers) st = 0 );
    ( "sharers_recorded",
      fun st ->
        let sh = as_home_var prog "sh" st in
        forall_remotes prog.n (fun i ->
            as_remote_ctl prog st i <> "S"
            || Value.set_mem i sh
            || as_home_transient_peer st = Some i) );
  ]
