(** A MESI-style protocol: invalidate plus the Exclusive-clean state.

    The first reader of an idle line receives it {e exclusively}
    ([grS(excl=true)]): a subsequent write upgrades E→M with a silent
    local step — no message at all, the signature MESI optimization,
    expressible here because tau guards are free.  When another reader
    appears the home {e downgrades} the exclusive holder ([down]/[dAck])
    instead of invalidating it, keeping both as sharers; writers go
    through the invalidation loop as in the invalidate protocol.

    Payloads carry the dirtiness of writebacks ([rel(dirty)],
    [ID(dirty)]) the way a memory controller would need.

    Request/reply pairs: [reqS]/[grS], [reqM]/[grM] (remote-initiated),
    [inv]/[ID] and [down]/[dAck] (home-initiated); [rel] stays
    request+ack.  The conditional E-vs-S entry lives in an internal
    state after the unconditional wait, keeping the pair optimizable. *)

open Ccr_core
open Ccr_semantics
open Ccr_refine

val system : Ir.system

val rv_invariants : Prog.t -> (string * (Rendezvous.state -> bool)) list
val async_invariants : Prog.t -> (string * (Async.state -> bool)) list
