open Ccr_core
open Ccr_semantics

let msg_name_of_send (g : Prog.cguard) =
  match g.cg_action with
  | Prog.C_send_home (m, _) | Prog.C_send_remote (_, m, _) -> m
  | Prog.C_recv_home _ | Prog.C_recv_any _ | Prog.C_recv_from _ | Prog.C_tau _
    ->
    invalid_arg "Absmap: transient mode refers to a non-send guard"

let has_ack q = List.exists (function Wire.Ack -> true | _ -> false) q
let has_nack q = List.exists (function Wire.Nack -> true | _ -> false) q

let find_req_named q name =
  List.find_map
    (function
      | Wire.Req m when m.Wire.m_name = name -> Some m
      | Wire.Req _ | Wire.Ack | Wire.Nack -> None)
    q

let has_req_other q name =
  List.exists
    (function
      | Wire.Req m -> m.Wire.m_name <> name
      | Wire.Ack | Wire.Nack -> false)
    q

let abs (prog : Prog.t) (st : Async.state) : Rendezvous.state =
  let abs_remote i (r : Async.remote) : Rendezvous.pstate =
    match r.r_mode with
    | Async.Rcomm -> { ctl = r.r_ctl; env = Array.copy r.r_env }
    | Async.Rtrans { guard; scratch } ->
      let g = prog.remote.p_states.(r.r_ctl).cs_guards.(guard) in
      if has_ack st.to_r.(i) then
        (* ack in flight: prepaid *)
        { ctl = g.cg_target; env = Prog.complete ~self:(Some i) scratch g }
      else { ctl = r.r_ctl; env = Array.copy r.r_env }
    | Async.Rwait { guard; scratch; repl } -> (
      let g = prog.remote.p_states.(r.r_ctl).cs_guards.(guard) in
      let req_name = msg_name_of_send g in
      if has_nack st.to_r.(i) then
        (* nack in flight: the request never happened *)
        { ctl = r.r_ctl; env = Array.copy r.r_env }
      else
        match find_req_named st.to_r.(i) repl with
        | Some m -> (
          (* reply in flight: both rendezvous are prepaid *)
          let env1 = Prog.complete ~self:(Some i) scratch g in
          let ctl1 = g.cg_target in
          match Async.remote_request_instances prog ~ctl:ctl1 ~env:env1 i m with
          | (gi2, scratch2) :: _ ->
            let g2 = prog.remote.p_states.(ctl1).cs_guards.(gi2) in
            {
              ctl = g2.cg_target;
              env = Prog.complete ~self:(Some i) scratch2 g2;
            }
          | [] ->
            invalid_arg "Absmap: reply in flight matches no wait guard")
        | None ->
          let pending =
            find_req_named st.to_h.(i) req_name <> None
            || List.exists
                 (fun (j, (m : Wire.msg)) -> j = i && m.m_name = req_name)
                 st.h.h_buf
          in
          if pending then
            (* request discarded: roll the sender back *)
            { ctl = r.r_ctl; env = Array.copy r.r_env }
          else
            (* the home consumed the request silently: the first
               rendezvous happened, the reply is still to come *)
            { ctl = g.cg_target; env = Prog.complete ~self:(Some i) scratch g })
  in
  let abs_home (h : Async.home) : Rendezvous.pstate =
    match h.h_mode with
    | Async.Hcomm -> { ctl = h.h_ctl; env = Array.copy h.h_env }
    | Async.Htrans { guard; peer; scratch; await } -> (
      let g = prog.home.p_states.(h.h_ctl).cs_guards.(guard) in
      let rolled () : Rendezvous.pstate =
        { ctl = h.h_ctl; env = Array.copy h.h_env }
      in
      let post () : Rendezvous.pstate =
        { ctl = g.cg_target; env = Prog.complete ~self:None scratch g }
      in
      match await with
      | `Ack -> if has_ack st.to_h.(peer) then post () else rolled ()
      | `Repl repl -> (
        let req_name = msg_name_of_send g in
        match find_req_named st.to_h.(peer) repl with
        | Some m -> (
          (* reply in flight towards the home: both rendezvous prepaid *)
          let env1 = Prog.complete ~self:None scratch g in
          let ctl1 = g.cg_target in
          match
            Async.home_request_instances prog ~ctl:ctl1 ~env:env1 peer m
          with
          | (gi2, scratch2) :: _ ->
            let g2 = prog.home.p_states.(ctl1).cs_guards.(gi2) in
            {
              ctl = g2.cg_target;
              env = Prog.complete ~self:None scratch2 g2;
            }
          | [] -> invalid_arg "Absmap: reply in flight matches no home guard")
        | None ->
          if has_nack st.to_h.(peer) then rolled ()
          else if has_req_other st.to_h.(peer) repl then
            (* a crossing request from the peer: implicit nack coming *)
            rolled ()
          else
            let pending =
              find_req_named st.to_r.(peer) req_name <> None
              ||
              match st.r.(peer).r_buf with
              | Some m -> m.m_name = req_name
              | None -> false
            in
            if pending then rolled ()
            else
              (* the peer consumed the request silently and will reply
                 after local actions only *)
              post ()))
  in
  { h = abs_home st.h; r = Array.mapi abs_remote st.r }

type failure = {
  label : Async.label;
  from_abs : Rendezvous.state;
  to_abs : Rendezvous.state;
}

type verdict = {
  ok : bool;
  states : int;
  transitions : int;
  stutters : int;
  steps : int;
  abs_states : int;
  failure : failure option;
  truncated : bool;
}

let check_eq1 ?(max_states = 200_000) (prog : Prog.t) (cfg : Async.config) =
  let visited = Hashtbl.create 4096 in
  let abs_seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push st =
    let key = Async.encode st in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      Hashtbl.replace abs_seen (Rendezvous.encode (abs prog st)) ();
      Queue.push st queue
    end
  in
  push (Async.initial prog cfg);
  let transitions = ref 0 and stutters = ref 0 and steps = ref 0 in
  let failure = ref None in
  let truncated = ref false in
  while (not (Queue.is_empty queue)) && !failure = None do
    let st = Queue.pop queue in
    if Hashtbl.length visited > max_states then truncated := true
    else
      List.iter
        (fun (label, st') ->
          if !failure = None then begin
            incr transitions;
            let a = abs prog st and a' = abs prog st' in
            let ka = Rendezvous.encode a and ka' = Rendezvous.encode a' in
            if ka = ka' then incr stutters
            else if
              List.exists
                (fun (_, s) -> Rendezvous.encode s = ka')
                (Rendezvous.successors prog a)
            then incr steps
            else failure := Some { label; from_abs = a; to_abs = a' };
            push st'
          end)
        (Async.successors prog cfg st)
  done;
  {
    ok = !failure = None;
    states = Hashtbl.length visited;
    transitions = !transitions;
    stutters = !stutters;
    steps = !steps;
    abs_states = Hashtbl.length abs_seen;
    failure = !failure;
    truncated = !truncated;
  }

let pp_verdict ppf v =
  Fmt.pf ppf
    "eq1: %s — %d async states (%d transitions: %d stutters, %d rendezvous \
     steps) covering %d rendezvous states%s"
    (if v.ok then "OK" else "VIOLATED")
    v.states v.transitions v.stutters v.steps v.abs_states
    (if v.truncated then " (truncated)" else "")
