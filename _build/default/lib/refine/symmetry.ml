open Ccr_core
open Ccr_semantics

(* Rename remote ids through [p] inside a value. *)
let permute_value (p : int array) (v : Value.t) =
  match v with
  | Value.Vrid r -> Value.Vrid p.(r)
  | Value.Vset _ ->
    Value.set_of_list (List.map (fun r -> p.(r)) (Value.set_members v))
  | Value.Vunit | Value.Vbool _ | Value.Vint _ -> v

let permute_env p env = Array.map (permute_value p) env

let permute_msg p (m : Wire.msg) =
  { m with Wire.m_payload = List.map (permute_value p) m.m_payload }

let permute_wire p = function
  | Wire.Req m -> Wire.Req (permute_msg p m)
  | (Wire.Ack | Wire.Nack) as w -> w

(* New array whose slot [p.(i)] holds the (renamed) content of slot [i]. *)
let permute_slots p a f =
  let a' = Array.make (Array.length a) a.(0) in
  Array.iteri (fun i x -> a'.(p.(i)) <- f x) a;
  a'

let permute_rv (_ : Prog.t) p (st : Rendezvous.state) : Rendezvous.state =
  {
    h = { st.h with env = permute_env p st.h.env };
    r =
      permute_slots p st.r (fun (ps : Rendezvous.pstate) ->
          { ps with env = permute_env p ps.env });
  }

let permute_async (_ : Prog.t) p (st : Async.state) : Async.state =
  let home =
    {
      st.Async.h with
      h_env = permute_env p st.Async.h.h_env;
      h_mode =
        (match st.Async.h.h_mode with
        | Async.Hcomm -> Async.Hcomm
        | Async.Htrans t ->
          Async.Htrans
            {
              t with
              peer = p.(t.peer);
              scratch = permute_env p t.scratch;
            });
      h_buf =
        List.map (fun (i, m) -> (p.(i), permute_msg p m)) st.Async.h.h_buf;
    }
  in
  let remote (r : Async.remote) =
    {
      Async.r_ctl = r.Async.r_ctl;
      r_env = permute_env p r.Async.r_env;
      r_mode =
        (match r.Async.r_mode with
        | Async.Rcomm -> Async.Rcomm
        | Async.Rtrans t ->
          Async.Rtrans { t with scratch = permute_env p t.scratch }
        | Async.Rwait t ->
          Async.Rwait { t with scratch = permute_env p t.scratch });
      r_buf = Option.map (permute_msg p) r.Async.r_buf;
    }
  in
  {
    Async.h = home;
    r = permute_slots p st.Async.r remote;
    to_h = permute_slots p st.Async.to_h (List.map (permute_wire p));
    to_r = permute_slots p st.Async.to_r (List.map (permute_wire p));
  }

(* All permutations of [0..n-1], as arrays. *)
let permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l)))
        l
  in
  perms (List.init n Fun.id) |> List.map Array.of_list

let canonical ~permute ~encode ?(max_fact = 6) prog n st =
  if n > max_fact then encode st
  else
    List.fold_left
      (fun best p ->
        let e = encode (permute prog p st) in
        match best with
        | Some b when String.compare b e <= 0 -> best
        | _ -> Some e)
      None (permutations n)
    |> Option.get

let canonical_rv ?max_fact (prog : Prog.t) st =
  canonical ~permute:permute_rv ~encode:Rendezvous.encode ?max_fact prog
    prog.n st

let canonical_async ?max_fact (prog : Prog.t) st =
  canonical ~permute:permute_async ~encode:Async.encode ?max_fact prog prog.n
    st
