open Ccr_core

let derive ?(n = 2) (sys : Ir.system) =
  let buf = Buffer.create 4096 in
  let out fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let sigs = Validate.check_exn sys in
  let rr = Reqrep.analyze sys in
  let prog = Link.compile ~n sys in
  out "Derivation report for %S (instantiated for %d remotes)\n" sys.sys_name
    n;
  out "%s\n\n" (String.make 72 '=');

  out "1. Messages\n\n";
  List.iter
    (fun (s : Validate.signature) ->
      out "   %-10s %-14s %d payload value(s)\n" s.msg
        (match s.direction with
        | Validate.Remote_to_home -> "remote->home"
        | Validate.Home_to_remote -> "home->remote")
        (List.length s.payload))
    sigs;

  out "\n2. Request/reply analysis (paper 3.3)\n\n";
  if rr.pairs = [] then
    out "   No pair qualifies: every rendezvous uses the generic\n\
        \   request + ack/nack scheme.\n"
  else
    List.iter
      (fun (p : Reqrep.pair) ->
        out "   %-14s two messages instead of four: the %s doubles as the\n\
            \                  ack of the %s, and the %s's sender is\n\
            \                  guaranteed ready for it.\n"
          (Fmt.str "%s/%s" p.req p.repl)
          p.repl p.req p.repl)
      rr.pairs;
  List.iter
    (fun (m, why) -> out "   %-14s kept generic: %s\n" m why)
    rr.rejected;

  out "\n3. Guard-by-guard treatment\n\n";
  let describe_proc (proc : Prog.proc) label =
    out "   %s:\n" label;
    Array.iter
      (fun (st : Prog.cstate) ->
        Array.iter
          (fun (g : Prog.cguard) ->
            let action = Fmt.str "%a" (Prog.pp_caction proc) g.cg_action in
            let treatment =
              match (g.cg_action, g.cg_ann) with
              | Prog.C_tau _, _ -> "local step, unchanged"
              | (Prog.C_send_home _ | Prog.C_send_remote _), Prog.Plain ->
                "request + transient state awaiting ack/nack"
              | _, Prog.Rr_request repl ->
                Fmt.str "request; the %s reply will complete it (no ack)"
                  repl
              | _, Prog.Rr_reply_send ->
                "fire-and-forget reply (peer guaranteed waiting)"
              | _, Prog.Rr_await_repl repl ->
                Fmt.str
                  "request + transient state awaiting the %s reply (no ack)"
                  repl
              | _, Prog.Rr_silent_consume ->
                "consumed silently (the later reply doubles as the ack)"
              | ( ( Prog.C_recv_home (m, _)
                  | Prog.C_recv_any (_, m, _)
                  | Prog.C_recv_from (_, m, _) ),
                  Prog.Plain ) -> (
                (* a pair's reply is never consumed as an ordinary
                   request: the waiting peer absorbs it directly *)
                match
                  List.find_opt
                    (fun (p : Reqrep.pair) -> p.repl = m)
                    prog.pairs
                with
                | Some p ->
                  Fmt.str
                    "wait bypassed by the refinement: the %s arrives as \
                     the completion of %s"
                    p.repl p.req
                | None -> "consumed with an explicit ack")
            in
            out "     %-10s %-26s %s\n" st.cs_name action treatment)
          st.cs_guards)
      proc.p_states
  in
  describe_proc prog.home "home";
  describe_proc prog.remote "remote";

  out "\n4. Derived automata\n\n";
  let ha = Compile.home_automaton prog in
  let ra = Compile.remote_automaton prog in
  let orig_h = Array.length prog.home.p_states in
  let orig_r = Array.length prog.remote.p_states in
  out "   home:   %d states -> %d (%d transient), %d edges\n" orig_h
    (Compile.n_states ha) (Compile.n_transient ha) (Compile.n_edges ha);
  out "   remote: %d states -> %d (%d transient), %d edges\n" orig_r
    (Compile.n_states ra) (Compile.n_transient ra) (Compile.n_edges ra);

  out "\n5. Buffering (paper Table 2, 2.5, 6)\n\n";
  out
    "   home buffer: any k >= 2 slots; the last free slot (progress\n\
    \   buffer) only admits a request that can complete a rendezvous now,\n\
    \   and one slot is kept free while transient (ack buffer).  This\n\
    \   guarantees progress for SOME remote; per-remote progress would\n\
    \   need %d slots for this configuration.\n"
    n;
  out "   each remote: one buffered home request.\n";
  (match prog.ff_msgs with
  | [] -> ()
  | ff ->
    out
      "\n   hand overrides: %s sent fire-and-forget and always admitted\n\
      \   (outside the soundness argument; model-check coherence directly).\n"
      (String.concat ", " ff));
  Buffer.contents buf
