(** Human-readable derivation reports.

    [derive] explains what the refinement did to a protocol: the message
    signatures, which rendezvous were request/reply-optimized and why the
    others were not, how each guard is treated (transient introduced, ack
    dropped, fire-and-forget), and the resulting automaton sizes and
    buffer requirements.  This is the artifact a protocol designer reads
    to trust the derived implementation — the per-protocol analogue of
    the paper's §3. *)

open Ccr_core

val derive : ?n:int -> Ir.system -> string
(** @param n instantiation used for the size figures (default 2). *)
