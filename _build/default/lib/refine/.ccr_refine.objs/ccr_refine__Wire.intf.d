lib/refine/wire.mli: Buffer Ccr_core Fmt Value
