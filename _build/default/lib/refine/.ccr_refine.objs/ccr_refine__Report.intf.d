lib/refine/report.mli: Ccr_core Ir
