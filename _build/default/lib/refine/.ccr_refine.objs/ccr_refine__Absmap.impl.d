lib/refine/absmap.ml: Array Async Ccr_core Ccr_semantics Fmt Hashtbl List Prog Queue Rendezvous Wire
