lib/refine/symmetry.mli: Async Ccr_core Ccr_semantics Prog Rendezvous
