lib/refine/codegen.mli: Compile
