lib/refine/codegen.ml: Buffer Compile Fmt List String
