lib/refine/async.mli: Ccr_core Fmt Prog Value Wire
