lib/refine/absmap.mli: Async Ccr_core Ccr_semantics Fmt Prog Rendezvous
