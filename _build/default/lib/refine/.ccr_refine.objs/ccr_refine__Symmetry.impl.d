lib/refine/symmetry.ml: Array Async Ccr_core Ccr_semantics Fun List Option Prog Rendezvous String Value Wire
