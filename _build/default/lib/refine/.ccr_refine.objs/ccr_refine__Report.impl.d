lib/refine/report.ml: Array Buffer Ccr_core Compile Fmt Ir Link List Prog Reqrep String Validate
