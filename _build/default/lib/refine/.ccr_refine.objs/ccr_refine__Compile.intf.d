lib/refine/compile.mli: Ccr_core
