lib/refine/wire.ml: Buffer Ccr_core Fmt List String Value
