lib/refine/async.ml: Array Buffer Ccr_core Domain Fmt List Prog String Value Wire
