lib/refine/async.ml: Array Buffer Ccr_core Fmt List Prog String Value Wire
