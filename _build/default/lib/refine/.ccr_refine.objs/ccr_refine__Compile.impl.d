lib/refine/compile.ml: Array Ccr_core Fmt Hashtbl List Prog
