(** Symmetry reduction over remote identities.

    The paper's systems are fully symmetric in the remote nodes: every
    remote runs the same process, and remote identities appear only as
    interchangeable tokens (directory variables, sharer sets, payload
    values, channel indices).  Any permutation of remote ids is therefore
    an automorphism of the transition system, and reachability only needs
    one representative per orbit.

    These functions produce a {e canonical encoding}: the
    lexicographically smallest encoding over all permutations of remote
    ids (exhaustive up to the given bound, falling back to the identity
    beyond it — still sound, just less reduction).  Plugging them in as
    the [encode] of {!Ccr_modelcheck.Explore.run} explores the quotient
    space: counts shrink by up to [n!] while preserving every property
    that is itself symmetric (coherence invariants, deadlock,
    progress).

    This is an {e extension} beyond the paper — 1997 SPIN had no symmetry
    reduction — quantified by the bench harness. *)

open Ccr_core
open Ccr_semantics

val canonical_rv : ?max_fact:int -> Prog.t -> Rendezvous.state -> string
(** Canonical encoding of a rendezvous state.  [max_fact] bounds the
    number of remotes for which all permutations are tried (default 6;
    beyond it the identity permutation is used). *)

val canonical_async : ?max_fact:int -> Prog.t -> Async.state -> string

val permute_rv : Prog.t -> int array -> Rendezvous.state -> Rendezvous.state
(** [permute_rv prog p st] renames remote [i] to [p.(i)] everywhere:
    remote array slots, rid-valued variables, rid sets, payloads and
    channel contents.  Exposed for the property tests. *)

val permute_async : Prog.t -> int array -> Async.state -> Async.state
