(** Dispatch-table rendering of refined automata.

    The paper notes the refined protocol "can be implemented directly,
    for example in microcode" (§2.3).  This module prints the explicit
    automata of {!Compile} as event-dispatch pseudo-C: one switch arm per
    (state, event), the shape a protocol engine's firmware takes. *)

val emit_c : Compile.automaton -> string
