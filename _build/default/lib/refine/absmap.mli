(** The abstraction function of the soundness argument (paper §4).

    [abs] maps a state of the refined asynchronous protocol back to a
    state of the rendezvous protocol, exactly as the paper constructs it:

    - requests for rendezvous still in flight (or buffered) are
      discarded, rolling their sender back from its transient mode to the
      communication state it came from;
    - acks in flight are prepaid: the process they travel towards is
      advanced to the state it will reach on consuming them (a reply
      under the request/reply optimization counts as an ack);
    - nacks in flight are discarded, rolling the nacked process back.

    {!check_eq1} verifies the paper's Equation 1 on the reachable
    fragment of the asynchronous system: every asynchronous transition
    maps under [abs] to a stutter or to a legal rendezvous transition.
    This is the mechanized counterpart of the paper's correctness
    argument, run per-protocol. *)

open Ccr_core
open Ccr_semantics

val abs : Prog.t -> Async.state -> Rendezvous.state

type failure = {
  label : Async.label;  (** the asynchronous transition that broke Eq. 1 *)
  from_abs : Rendezvous.state;
  to_abs : Rendezvous.state;
}

type verdict = {
  ok : bool;
  states : int;  (** asynchronous states explored *)
  transitions : int;
  stutters : int;  (** transitions with [abs q = abs q'] *)
  steps : int;  (** transitions mapping to a rendezvous transition *)
  abs_states : int;  (** distinct rendezvous states in the image of [abs] *)
  failure : failure option;
  truncated : bool;  (** hit [max_states] before exhausting the space *)
}

val check_eq1 :
  ?max_states:int -> Prog.t -> Async.config -> verdict
(** Breadth-first over the asynchronous system (default cap 200_000
    states); stops at the first Eq. 1 violation. *)

val pp_verdict : verdict Fmt.t
