lib/runtime/channel.ml: Fun Mutex Queue
