lib/runtime/runtime.ml: Array Async Atomic Ccr_core Ccr_refine Channel Fmt Fun List Mutex Prog Random String Thread Unix
