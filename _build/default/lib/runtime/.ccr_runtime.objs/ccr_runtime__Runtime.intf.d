lib/runtime/runtime.mli: Async Ccr_core Ccr_refine Fmt Prog
