lib/runtime/channel.mli:
