(** Thread-safe FIFO channels with single-consumer peek semantics.

    Models the paper's network assumption (§2.2): reliable, in-order,
    point-to-point delivery with unbounded buffering.  The consumer may
    {!peek} before committing to {!pop} — remotes must leave a request
    queued while their one-slot buffer is full (Table 1). *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The oldest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
