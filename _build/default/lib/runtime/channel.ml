type 'a t = { mutex : Mutex.t; queue : 'a Queue.t }

let create () = { mutex = Mutex.create (); queue = Queue.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let send t x = with_lock t (fun () -> Queue.push x t.queue)
let peek t = with_lock t (fun () -> Queue.peek_opt t.queue)
let pop t = with_lock t (fun () -> Queue.take_opt t.queue)
let length t = with_lock t (fun () -> Queue.length t.queue)
let is_empty t = length t = 0
