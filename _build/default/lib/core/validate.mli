(** Static checking of rendezvous protocols.

    [check] enforces well-formedness (states and variables resolve, guards
    type-check, message payloads are consistent across the two processes)
    and the paper's syntactic restrictions (§2.4):

    - star topology: remotes talk only to the home, the home only to
      remotes;
    - a remote communication state is either {e active} — exactly one
      output guard — or {e passive} — input guards plus optional [Tau]
      guards (Figure 1 (b) and (c));
    - the home does not mix [Tau] guards with communication guards in one
      state (internal and communication states are disjoint);
    - internal states cannot loop among themselves forever (the paper's
      assumption that a process eventually reaches a communication
      state). *)

type error = { where : string; what : string }

type direction = Remote_to_home | Home_to_remote

type signature = {
  msg : string;
  direction : direction;
  payload : Expr.ty list;
}

val check : Ir.system -> (signature list, error list) result
(** All checks; on success returns the message signature table. *)

val check_exn : Ir.system -> signature list
(** Like {!check} but raises [Invalid_argument] with a readable message. *)

val pp_error : error Fmt.t
