(** Compiled (linked) protocols.

    {!Link.compile} turns a validated {!Ir.system} into this form: variable
    names become array slots, state names become indices, and every guard
    carries its request/reply annotation.  Both the rendezvous and the
    asynchronous semantics execute this representation. *)

type cexpr =
  | C_const of Value.t
  | C_var of int
  | C_self
  | C_set_add of cexpr * cexpr
  | C_set_remove of cexpr * cexpr
  | C_set_singleton of cexpr
  | C_succ of cexpr

type cbool =
  | B_true
  | B_not of cbool
  | B_and of cbool * cbool
  | B_or of cbool * cbool
  | B_eq of cexpr * cexpr
  | B_mem of cexpr * cexpr
  | B_empty of cexpr

(** How the refinement treats a communication guard (paper §3, §3.3). *)
type ann =
  | Plain
      (** generic scheme: request + ack/nack, transient state on the
          active side *)
  | Rr_request of string
      (** active send that begins a request/reply pair; the argument is
          the reply message.  The sender waits for the reply (or a nack)
          instead of an ack. *)
  | Rr_reply_send
      (** active send of a reply: fire-and-forget, the peer is guaranteed
          ready *)
  | Rr_silent_consume
      (** passive receive of a pair's request: no ack is emitted, the
          eventual reply doubles as the ack *)
  | Rr_await_repl of string
      (** home send of a home-initiated pair's request; completion happens
          when the reply request arrives *)

type caction =
  | C_send_home of string * cexpr list
  | C_send_remote of cexpr * string * cexpr list
  | C_recv_home of string * int list
  | C_recv_any of int * string * int list  (** binder slot, msg, payload *)
  | C_recv_from of cexpr * string * int list
  | C_tau of string

type cguard = {
  cg_cond : cbool;
  cg_choose : (int * cexpr) list;
  cg_action : caction;
  cg_assigns : (int * cexpr) list;
  cg_target : int;
  cg_ann : ann;
}

type cstate = {
  cs_name : string;
  cs_guards : cguard array;
  cs_internal : bool;
  cs_active : int option;
      (** for remote processes: the single output guard's index, if this is
          an active communication state *)
  cs_sends : int list;
      (** for the home process: indices of output guards, in declaration
          order (the rotation order of Table 2 row T2) *)
}

type proc = {
  p_name : string;
  p_var_names : string array;
  p_domains : Value.domain array;
  p_states : cstate array;
  p_init : int;
  p_init_env : Value.t array;
}

type t = {
  t_name : string;
  n : int;  (** number of remote nodes *)
  home : proc;
  remote : proc;
  pairs : Reqrep.pair list;  (** request/reply pairs applied (may be []) *)
  ff_msgs : string list;
      (** fire-and-forget messages (hand-optimized protocols only): sent
          without awaiting any response and always admitted by the home,
          like the Avalanche team's unacked [LR].  Such protocols fall
          outside the refinement's soundness argument; see
          {!Link.compile}'s [fire_and_forget]. *)
}

exception Runtime_error of string

val eval : env:Value.t array -> self:int option -> cexpr -> Value.t
val eval_b : env:Value.t array -> self:int option -> cbool -> bool

val state_index : proc -> string -> int
(** Raises [Not_found] if the state does not exist. *)

val var_index : proc -> string -> int

val guard_instances :
  self:int option ->
  Value.t array ->
  cguard ->
  extra:(int * Value.t) list ->
  Value.t array list
(** All environments in which the guard can fire: start from the given
    environment, write the [extra] bindings (receive payload and sender
    binder), expand the [choose] binders over their sets, and keep the
    instances whose condition holds.  The returned arrays are fresh scratch
    environments with bindings applied but assignments {e not yet}
    performed. *)

val complete : self:int option -> Value.t array -> cguard -> Value.t array
(** Perform the guard's simultaneous assignments on a scratch environment
    (returned by {!guard_instances}); returns the post-state environment.
    The caller moves control to [cg_target]. *)

val pp_ann : ann Fmt.t

val pp_cexpr : proc -> cexpr Fmt.t
(** Print with variable names resolved through the process' slot table. *)

val pp_caction : proc -> caction Fmt.t
(** CSP-style rendering: [h!m(e)], [r(i)?m(v)], [tau:l], ... *)
