lib/core/value.mli: Buffer Fmt
