lib/core/parse.ml: Buffer Expr Fmt Ir List Printexc String Value
