lib/core/dsl.ml: Expr Ir Value
