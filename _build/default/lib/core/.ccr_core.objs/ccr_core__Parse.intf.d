lib/core/parse.mli: Fmt Ir
