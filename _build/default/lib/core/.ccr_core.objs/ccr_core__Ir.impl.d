lib/core/ir.ml: Expr Fmt List Value
