lib/core/reqrep.mli: Fmt Ir
