lib/core/prog.ml: Array Fmt List Reqrep Value
