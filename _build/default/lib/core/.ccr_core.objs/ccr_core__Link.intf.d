lib/core/link.mli: Ir Prog
