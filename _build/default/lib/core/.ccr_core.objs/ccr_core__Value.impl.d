lib/core/value.ml: Buffer Char Fmt List Stdlib String
