lib/core/dsl.mli: Expr Ir Value
