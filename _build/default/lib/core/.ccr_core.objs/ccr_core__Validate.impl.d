lib/core/validate.ml: Expr Fmt Hashtbl Ir List Option String Value
