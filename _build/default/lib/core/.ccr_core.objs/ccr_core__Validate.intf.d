lib/core/validate.mli: Expr Fmt Ir
