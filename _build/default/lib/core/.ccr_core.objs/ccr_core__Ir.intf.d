lib/core/ir.mli: Expr Fmt Value
