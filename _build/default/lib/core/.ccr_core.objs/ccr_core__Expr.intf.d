lib/core/expr.mli: Fmt Value
