lib/core/expr.ml: Fmt List Result Value
