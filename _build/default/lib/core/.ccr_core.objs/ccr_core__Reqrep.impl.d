lib/core/reqrep.ml: Expr Fmt Ir List Set String
