lib/core/prog.mli: Fmt Reqrep Value
