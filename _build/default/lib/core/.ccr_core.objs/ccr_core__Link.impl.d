lib/core/link.ml: Array Expr Fmt Fun Hashtbl Ir List Prog Reqrep Validate Value
