(** A textual syntax for rendezvous protocols.

    Protocols can be written in [.ccr] files instead of the OCaml DSL, so
    the CLI works without recompiling.  The migratory protocol reads:

    {v
system migratory

home {
  var o : rid
  var j : rid

  state F {
    recv any j ? req() goto Fg
  }
  state Fg {
    send r[j] ! gr() with o := j goto E
  }
  state E {
    recv r[o] ? LR() with o := @0, j := @0 goto F
    recv any j ? req() goto I1
  }
  state I1 {
    send r[o] ! inv() goto I2
    recv r[o] ? LR() goto I3
  }
  state I2 {
    recv r[o] ? ID() goto I3
  }
  state I3 {
    send r[j] ! gr() with o := j goto E
  }
}

remote {
  state I {
    send h ! req() goto Wg
  }
  state Wg {
    recv h ? gr() goto V
  }
  state V {
    tau evict goto Ev
    recv h ? inv() goto Iv
  }
  state Ev {
    send h ! LR() goto I
  }
  state Iv {
    send h ! ID() goto I
  }
}
    v}

    Guard clauses, in order: [choose x in EXPR] (repeatable),
    [when BEXPR], [with x := EXPR, ...], [goto STATE].  Domains:
    [unit], [bool], [rid], [set], [int LO .. HI]; optional initializer
    [var x : rid = @0].  Expressions: variables, [self], [all] (the full
    remote set), [@K] (remote K), integer and boolean literals, [{}]
    (empty set), [{EXPR}] (singleton), [EXPR + EXPR] / [EXPR - EXPR] (set
    add/remove), [succ EXPR].  Conditions: [=], [!=], [in], [empty],
    [not], [and], [or], parentheses.  Comments run from [#] or [//] to
    the end of the line. *)

exception Error of { line : int; col : int; msg : string }

val system : string -> Ir.system
(** Parse a system from a string.  @raise Error with position info. *)

val system_of_file : string -> Ir.system
(** @raise Error (parse/lex) or [Sys_error] (I/O). *)

val to_string : Ir.system -> string
(** Print a system in the concrete syntax.  Round-trips semantically:
    [system (to_string sys)] validates and has the same state spaces and
    request/reply pairs (structural equality may differ on sugared
    constants, e.g. set literals).  The initial state is printed first
    (the syntax defines the first state as initial). *)

val pp_error : exn Fmt.t
(** Render {!Error} (and any other exception) readably. *)
