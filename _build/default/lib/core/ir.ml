type target = To_home | To_remote of Expr.t

type source =
  | From_home
  | From_any_remote of string
  | From_remote of Expr.t

type action =
  | Send of target * string * Expr.t list
  | Recv of source * string * string list
  | Tau of string

type guard = {
  g_cond : Expr.b;
  g_choose : (string * Expr.t) list;
  g_action : action;
  g_assigns : (string * Expr.t) list;
  g_target : string;
}

type state = { s_name : string; s_guards : guard list }

type process = {
  p_name : string;
  p_vars : (string * Value.domain) list;
  p_init_state : string;
  p_init_env : (string * Value.t) list;
  p_states : state list;
}

type system = { sys_name : string; home : process; remote : process }

let state_is_internal st =
  List.for_all
    (fun g -> match g.g_action with Tau _ -> true | Send _ | Recv _ -> false)
    st.s_guards

let find_state p name = List.find_opt (fun s -> s.s_name = name) p.p_states

let action_msg = function
  | Send (_, m, _) | Recv (_, m, _) -> Some m
  | Tau _ -> None

let pp_target ppf = function
  | To_home -> Fmt.string ppf "h"
  | To_remote e -> Fmt.pf ppf "r(%a)" Expr.pp e

let pp_source ppf = function
  | From_home -> Fmt.string ppf "h"
  | From_any_remote x -> Fmt.pf ppf "r(%s)" x
  | From_remote e -> Fmt.pf ppf "r(%a)" Expr.pp e

let pp_action ppf = function
  | Send (t, m, []) -> Fmt.pf ppf "%a!%s" pp_target t m
  | Send (t, m, args) ->
    Fmt.pf ppf "%a!%s(%a)" pp_target t m Fmt.(list ~sep:comma Expr.pp) args
  | Recv (s, m, []) -> Fmt.pf ppf "%a?%s" pp_source s m
  | Recv (s, m, vars) ->
    Fmt.pf ppf "%a?%s(%a)" pp_source s m Fmt.(list ~sep:comma string) vars
  | Tau l -> Fmt.pf ppf "tau:%s" l

let pp_guard ppf g =
  let pp_choose ppf (x, s) = Fmt.pf ppf "choose %s in %a; " x Expr.pp s in
  let pp_assign ppf (x, e) = Fmt.pf ppf "; %s := %a" x Expr.pp e in
  Fmt.pf ppf "%a%a%a%a -> %s"
    Fmt.(list ~sep:nop pp_choose)
    g.g_choose
    (fun ppf c ->
      match c with Expr.True -> () | c -> Fmt.pf ppf "[%a] " Expr.pp_b c)
    g.g_cond pp_action g.g_action
    Fmt.(list ~sep:nop pp_assign)
    g.g_assigns g.g_target

let pp_process ppf p =
  Fmt.pf ppf "@[<v>process %s (init %s)@," p.p_name p.p_init_state;
  List.iter
    (fun (x, d) -> Fmt.pf ppf "  var %s : %a@," x Value.pp_domain d)
    p.p_vars;
  List.iter
    (fun st ->
      Fmt.pf ppf "  state %s%s:@," st.s_name
        (if state_is_internal st then " (internal)" else "");
      List.iter (fun g -> Fmt.pf ppf "    %a@," pp_guard g) st.s_guards)
    p.p_states;
  Fmt.pf ppf "@]"

let pp_system ppf sys =
  Fmt.pf ppf "@[<v>system %s@,%a@,%a@]" sys.sys_name pp_process sys.home
    pp_process sys.remote
