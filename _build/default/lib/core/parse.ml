exception Error of { line : int; col : int; msg : string }

let pp_error ppf = function
  | Error { line; col; msg } ->
    Fmt.pf ppf "parse error at line %d, column %d: %s" line col msg
  | e -> Fmt.string ppf (Printexc.to_string e)

(* ---- tokens ------------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int
  | RID of int  (** [@K] *)
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | BANG
  | QUESTION
  | COMMA
  | COLON
  | ASSIGN  (** [:=] *)
  | EQ
  | NEQ
  | PLUS
  | MINUS
  | DOTDOT
  | EOF

let token_name = function
  | IDENT s -> Fmt.str "identifier %S" s
  | INT i -> Fmt.str "integer %d" i
  | RID r -> Fmt.str "remote @%d" r
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | BANG -> "'!'"
  | QUESTION -> "'?'"
  | COMMA -> "','"
  | COLON -> "':'"
  | ASSIGN -> "':='"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | DOTDOT -> "'..'"
  | EOF -> "end of input"

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the current line's start *)
}

let fail lx msg = raise (Error { line = lx.line; col = lx.pos - lx.bol + 1; msg })

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos;
      skip_ws lx
    | '#' ->
      while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | '/'
      when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
      while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | _ -> ()

let next_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then EOF
  else
    let c = lx.src.[lx.pos] in
    let adv n = lx.pos <- lx.pos + n in
    let peek1 =
      if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1]
      else None
    in
    match c with
    | '{' -> adv 1; LBRACE
    | '}' -> adv 1; RBRACE
    | '[' -> adv 1; LBRACKET
    | ']' -> adv 1; RBRACKET
    | '(' -> adv 1; LPAREN
    | ')' -> adv 1; RPAREN
    | ',' -> adv 1; COMMA
    | '+' -> adv 1; PLUS
    | '-' -> adv 1; MINUS
    | '=' -> adv 1; EQ
    | '!' when peek1 = Some '=' -> adv 2; NEQ
    | '!' -> adv 1; BANG
    | '?' -> adv 1; QUESTION
    | ':' when peek1 = Some '=' -> adv 2; ASSIGN
    | ':' -> adv 1; COLON
    | '.' when peek1 = Some '.' -> adv 2; DOTDOT
    | '@' ->
      adv 1;
      let start = lx.pos in
      while
        lx.pos < String.length lx.src
        && match lx.src.[lx.pos] with '0' .. '9' -> true | _ -> false
      do
        adv 1
      done;
      if lx.pos = start then fail lx "expected a remote number after '@'";
      RID (int_of_string (String.sub lx.src start (lx.pos - start)))
    | '0' .. '9' ->
      let start = lx.pos in
      while
        lx.pos < String.length lx.src
        && match lx.src.[lx.pos] with '0' .. '9' -> true | _ -> false
      do
        adv 1
      done;
      INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        adv 1
      done;
      IDENT (String.sub lx.src start (lx.pos - start))
    | c -> fail lx (Fmt.str "unexpected character %C" c)

(* ---- parser ------------------------------------------------------------- *)

type parser_state = { lx : lexer; mutable tok : token }

let advance p = p.tok <- next_token p.lx
let perr p msg = fail p.lx msg

let expect p t =
  if p.tok = t then advance p
  else perr p (Fmt.str "expected %s, found %s" (token_name t) (token_name p.tok))

let ident p =
  match p.tok with
  | IDENT s -> advance p; s
  | t -> perr p (Fmt.str "expected an identifier, found %s" (token_name t))

let keyword p kw =
  match p.tok with
  | IDENT s when s = kw -> advance p
  | t -> perr p (Fmt.str "expected %S, found %s" kw (token_name t))

let accept_kw p kw =
  match p.tok with
  | IDENT s when s = kw -> advance p; true
  | _ -> false

(* expressions *)
let rec parse_expr p : Expr.t =
  let lhs = parse_atom p in
  parse_expr_rest p lhs

and parse_expr_rest p lhs =
  match p.tok with
  | PLUS ->
    advance p;
    let rhs = parse_atom p in
    parse_expr_rest p (Expr.Set_add (lhs, rhs))
  | MINUS ->
    advance p;
    let rhs = parse_atom p in
    parse_expr_rest p (Expr.Set_remove (lhs, rhs))
  | _ -> lhs

and parse_atom p : Expr.t =
  match p.tok with
  | IDENT "self" -> advance p; Expr.Self
  | IDENT "all" -> advance p; Expr.Full_set
  | IDENT "true" -> advance p; Expr.Const (Value.Vbool true)
  | IDENT "false" -> advance p; Expr.Const (Value.Vbool false)
  | IDENT "succ" ->
    advance p;
    Expr.Succ (parse_atom p)
  | IDENT x -> advance p; Expr.Var x
  | INT i -> advance p; Expr.Const (Value.Vint i)
  | RID r -> advance p; Expr.Const (Value.Vrid r)
  | LBRACE ->
    advance p;
    if p.tok = RBRACE then begin
      advance p;
      Expr.Const Value.set_empty
    end
    else begin
      let e = parse_expr p in
      expect p RBRACE;
      Expr.Set_singleton e
    end
  | LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p RPAREN;
    e
  | t -> perr p (Fmt.str "expected an expression, found %s" (token_name t))

(* conditions, precedence: not > comparisons > and > or *)
let rec parse_bexpr p : Expr.b =
  let lhs = parse_band p in
  if accept_kw p "or" then Expr.Or (lhs, parse_bexpr p) else lhs

and parse_band p =
  let lhs = parse_bfact p in
  if accept_kw p "and" then Expr.And (lhs, parse_band p) else lhs

and parse_bfact p =
  match p.tok with
  | IDENT "not" ->
    advance p;
    Expr.Not (parse_bfact p)
  | IDENT "empty" ->
    advance p;
    Expr.Set_is_empty (parse_atom p)
  | LPAREN ->
    (* '(' is ambiguous: a parenthesized condition, or a parenthesized
       expression opening a comparison.  Try the condition reading first
       and backtrack on failure — inputs are small. *)
    let saved = (p.lx.pos, p.lx.line, p.lx.bol, p.tok) in
    (try
       advance p;
       let b = parse_bexpr p in
       expect p RPAREN;
       b
     with Error _ ->
       let pos, line, bol, tok = saved in
       p.lx.pos <- pos;
       p.lx.line <- line;
       p.lx.bol <- bol;
       p.tok <- tok;
       parse_comparison p)
  | _ -> parse_comparison p

and parse_comparison p =
  let lhs = parse_expr p in
  match p.tok with
  | EQ ->
    advance p;
    Expr.Eq (lhs, parse_expr p)
  | NEQ ->
    advance p;
    Expr.Not (Expr.Eq (lhs, parse_expr p))
  | IDENT "in" ->
    advance p;
    Expr.Set_mem (lhs, parse_expr p)
  | t ->
    perr p
      (Fmt.str "expected '=', '!=' or 'in' in a condition, found %s"
         (token_name t))

(* guard clause tail: choose* when? with? goto *)
let parse_guard_tail p ~action =
  let choose = ref [] in
  while accept_kw p "choose" do
    let x = ident p in
    keyword p "in";
    let e = parse_expr p in
    choose := (x, e) :: !choose
  done;
  let cond = if accept_kw p "when" then parse_bexpr p else Expr.True in
  let assigns =
    if accept_kw p "with" then begin
      let one () =
        let x = ident p in
        expect p ASSIGN;
        (x, parse_expr p)
      in
      let acc = ref [ one () ] in
      while p.tok = COMMA do
        advance p;
        acc := one () :: !acc
      done;
      List.rev !acc
    end
    else []
  in
  keyword p "goto";
  let target = ident p in
  Ir.
    {
      g_cond = cond;
      g_choose = List.rev !choose;
      g_action = action;
      g_assigns = assigns;
      g_target = target;
    }

let parse_args p =
  expect p LPAREN;
  if p.tok = RPAREN then begin
    advance p;
    []
  end
  else begin
    let acc = ref [ parse_expr p ] in
    while p.tok = COMMA do
      advance p;
      acc := parse_expr p :: !acc
    done;
    expect p RPAREN;
    List.rev !acc
  end

let parse_binders p =
  expect p LPAREN;
  if p.tok = RPAREN then begin
    advance p;
    []
  end
  else begin
    let acc = ref [ ident p ] in
    while p.tok = COMMA do
      advance p;
      acc := ident p :: !acc
    done;
    expect p RPAREN;
    List.rev !acc
  end

(* send h ! m(args) ... | send r[expr] ! m(args) ... *)
let parse_send p ~is_remote =
  let target =
    match p.tok with
    | IDENT "h" ->
      if not is_remote then
        perr p "the home cannot send to itself; use r[EXPR]";
      advance p;
      Ir.To_home
    | IDENT "r" ->
      if is_remote then perr p "a remote can only send to h (star topology)";
      advance p;
      expect p LBRACKET;
      let e = parse_expr p in
      expect p RBRACKET;
      Ir.To_remote e
    | t -> perr p (Fmt.str "expected 'h' or 'r[...]', found %s" (token_name t))
  in
  expect p BANG;
  let m = ident p in
  let args = parse_args p in
  parse_guard_tail p ~action:(Ir.Send (target, m, args))

(* recv h ? m(vars) | recv any i ? m(vars) | recv r[expr] ? m(vars) *)
let parse_recv p ~is_remote =
  let source =
    match p.tok with
    | IDENT "h" ->
      if not is_remote then
        perr p "the home cannot receive from itself; use 'any x' or r[EXPR]";
      advance p;
      Ir.From_home
    | IDENT "any" ->
      if is_remote then
        perr p "a remote can only receive from h (star topology)";
      advance p;
      Ir.From_any_remote (ident p)
    | IDENT "r" ->
      if is_remote then
        perr p "a remote can only receive from h (star topology)";
      advance p;
      expect p LBRACKET;
      let e = parse_expr p in
      expect p RBRACKET;
      Ir.From_remote e
    | t ->
      perr p
        (Fmt.str "expected 'h', 'any x' or 'r[...]', found %s" (token_name t))
  in
  expect p QUESTION;
  let m = ident p in
  let vars = parse_binders p in
  parse_guard_tail p ~action:(Ir.Recv (source, m, vars))

let parse_guard p ~is_remote =
  match p.tok with
  | IDENT "tau" ->
    advance p;
    let l = ident p in
    parse_guard_tail p ~action:(Ir.Tau l)
  | IDENT "send" ->
    advance p;
    parse_send p ~is_remote
  | IDENT "recv" ->
    advance p;
    parse_recv p ~is_remote
  | t ->
    perr p
      (Fmt.str "expected 'tau', 'send' or 'recv', found %s" (token_name t))

let parse_domain p =
  match p.tok with
  | IDENT "unit" -> advance p; Value.Dunit
  | IDENT "bool" -> advance p; Value.Dbool
  | IDENT "rid" -> advance p; Value.Drid
  | IDENT "set" -> advance p; Value.Dset
  | IDENT "int" ->
    advance p;
    let lo =
      match p.tok with
      | INT i -> advance p; i
      | MINUS -> (
        advance p;
        match p.tok with
        | INT i -> advance p; -i
        | t -> perr p (Fmt.str "expected an integer, found %s" (token_name t)))
      | t -> perr p (Fmt.str "expected an integer, found %s" (token_name t))
    in
    expect p DOTDOT;
    let hi =
      match p.tok with
      | INT i -> advance p; i
      | t -> perr p (Fmt.str "expected an integer, found %s" (token_name t))
    in
    Value.Dint (lo, hi)
  | t ->
    perr p
      (Fmt.str "expected a domain (unit/bool/rid/set/int lo .. hi), found %s"
         (token_name t))

let parse_literal p =
  match p.tok with
  | INT i -> advance p; Value.Vint i
  | RID r -> advance p; Value.Vrid r
  | IDENT "true" -> advance p; Value.Vbool true
  | IDENT "false" -> advance p; Value.Vbool false
  | LBRACE ->
    advance p;
    expect p RBRACE;
    Value.set_empty
  | t ->
    perr p (Fmt.str "expected a literal initializer, found %s" (token_name t))

let parse_process p ~name ~is_remote =
  expect p LBRACE;
  let vars = ref [] and init_env = ref [] and states = ref [] in
  let init = ref None in
  while p.tok <> RBRACE do
    match p.tok with
    | IDENT "var" ->
      advance p;
      let x = ident p in
      expect p COLON;
      let d = parse_domain p in
      vars := (x, d) :: !vars;
      if p.tok = EQ then begin
        advance p;
        init_env := (x, parse_literal p) :: !init_env
      end
    | IDENT "state" ->
      advance p;
      let s = ident p in
      if !init = None then init := Some s;
      expect p LBRACE;
      let guards = ref [] in
      while p.tok <> RBRACE do
        guards := parse_guard p ~is_remote :: !guards
      done;
      expect p RBRACE;
      states := Ir.{ s_name = s; s_guards = List.rev !guards } :: !states
    | t ->
      perr p (Fmt.str "expected 'var' or 'state', found %s" (token_name t))
  done;
  expect p RBRACE;
  match !init with
  | None -> perr p (Fmt.str "process %s has no states" name)
  | Some init ->
    Ir.
      {
        p_name = name;
        p_vars = List.rev !vars;
        p_init_state = init;
        p_init_env = List.rev !init_env;
        p_states = List.rev !states;
      }

let parse_system p =
  keyword p "system";
  (* system names may be dash-separated words ("write-update") *)
  let name = ref (ident p) in
  while p.tok = MINUS do
    advance p;
    name := !name ^ "-" ^ ident p
  done;
  let name = !name in
  keyword p "home";
  let home = parse_process p ~name:"home" ~is_remote:false in
  keyword p "remote";
  let remote = parse_process p ~name:"remote" ~is_remote:true in
  if p.tok <> EOF then
    perr p (Fmt.str "trailing input: %s" (token_name p.tok));
  Ir.{ sys_name = name; home; remote }

let system src =
  let lx = { src; pos = 0; line = 1; bol = 0 } in
  let p = { lx; tok = EOF } in
  advance p;
  parse_system p

let system_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  system src

(* ---- printer ------------------------------------------------------------ *)

let rec print_expr (e : Expr.t) =
  match e with
  | Expr.Set_add (a, b) -> print_expr a ^ " + " ^ print_atom b
  | Expr.Set_remove (a, b) -> print_expr a ^ " - " ^ print_atom b
  | e -> print_atom e

and print_atom (e : Expr.t) =
  match e with
  | Expr.Var x -> x
  | Expr.Self -> "self"
  | Expr.Full_set -> "all"
  | Expr.Const (Value.Vint i) -> string_of_int i
  | Expr.Const (Value.Vrid r) -> "@" ^ string_of_int r
  | Expr.Const (Value.Vbool true) -> "true"
  | Expr.Const (Value.Vbool false) -> "false"
  | Expr.Const (Value.Vset 0) -> "{}"
  | Expr.Const (Value.Vset _ as s) ->
    (* general set constants print as unions of singletons *)
    (match Value.set_members s with
    | [] -> "{}"
    | r :: rest ->
      List.fold_left
        (fun acc r -> acc ^ " + @" ^ string_of_int r)
        ("{@" ^ string_of_int r ^ "}")
        rest)
  | Expr.Const Value.Vunit -> "0"
  | Expr.Set_singleton e -> "{" ^ print_expr e ^ "}"
  | Expr.Succ e -> "succ " ^ print_atom e
  | Expr.Set_add _ | Expr.Set_remove _ -> "(" ^ print_expr e ^ ")"

let rec print_bexpr (b : Expr.b) =
  match b with
  | Expr.Or (a, b) -> print_band a ^ " or " ^ print_bexpr b
  | b -> print_band b

and print_band (b : Expr.b) =
  match b with
  | Expr.And (a, b) -> print_bfact a ^ " and " ^ print_band b
  | b -> print_bfact b

and print_bfact (b : Expr.b) =
  match b with
  | Expr.True -> "(0 = 0)" (* no literal 'true' condition in the grammar *)
  | Expr.Not (Expr.Eq (a, b)) -> print_expr a ^ " != " ^ print_expr b
  | Expr.Not b -> "not " ^ print_bfact b
  | Expr.Set_is_empty e -> "empty " ^ print_atom e
  | Expr.Eq (a, b) -> print_expr a ^ " = " ^ print_expr b
  | Expr.Set_mem (a, b) -> print_expr a ^ " in " ^ print_expr b
  | Expr.And _ | Expr.Or _ -> "(" ^ print_bexpr b ^ ")"

let print_guard (g : Ir.guard) =
  let head =
    match g.g_action with
    | Ir.Tau l -> "tau " ^ l
    | Ir.Send (Ir.To_home, m, args) ->
      Fmt.str "send h ! %s(%s)" m (String.concat ", " (List.map print_expr args))
    | Ir.Send (Ir.To_remote e, m, args) ->
      Fmt.str "send r[%s] ! %s(%s)" (print_expr e) m
        (String.concat ", " (List.map print_expr args))
    | Ir.Recv (Ir.From_home, m, vars) ->
      Fmt.str "recv h ? %s(%s)" m (String.concat ", " vars)
    | Ir.Recv (Ir.From_any_remote x, m, vars) ->
      Fmt.str "recv any %s ? %s(%s)" x m (String.concat ", " vars)
    | Ir.Recv (Ir.From_remote e, m, vars) ->
      Fmt.str "recv r[%s] ? %s(%s)" (print_expr e) m (String.concat ", " vars)
  in
  let choose =
    String.concat ""
      (List.map
         (fun (x, e) -> Fmt.str " choose %s in %s" x (print_expr e))
         g.g_choose)
  in
  let cond =
    match g.g_cond with
    | Expr.True -> ""
    | c -> " when " ^ print_bexpr c
  in
  let assigns =
    match g.g_assigns with
    | [] -> ""
    | l ->
      " with "
      ^ String.concat ", "
          (List.map (fun (x, e) -> x ^ " := " ^ print_expr e) l)
  in
  Fmt.str "    %s%s%s%s goto %s" head choose cond assigns g.g_target

let print_domain = function
  | Value.Dunit -> "unit"
  | Value.Dbool -> "bool"
  | Value.Drid -> "rid"
  | Value.Dset -> "set"
  | Value.Dint (lo, hi) -> Fmt.str "int %d .. %d" lo hi

let print_literal = function
  | Value.Vint i -> string_of_int i
  | Value.Vrid r -> "@" ^ string_of_int r
  | Value.Vbool true -> "true"
  | Value.Vbool false -> "false"
  | Value.Vset 0 -> "{}"
  | v -> invalid_arg (Fmt.str "Parse.to_string: unprintable initializer %a" Value.pp v)

let print_process buf (p : Ir.process) =
  List.iter
    (fun (x, d) ->
      Buffer.add_string buf (Fmt.str "  var %s : %s" x (print_domain d));
      (match List.assoc_opt x p.p_init_env with
      | Some v -> Buffer.add_string buf (" = " ^ print_literal v)
      | None -> ());
      Buffer.add_char buf '\n')
    p.p_vars;
  (* the first printed state must be the initial one *)
  let states =
    match List.partition (fun (s : Ir.state) -> s.s_name = p.p_init_state) p.p_states with
    | [ init ], rest -> init :: rest
    | _ -> p.p_states
  in
  List.iter
    (fun (st : Ir.state) ->
      Buffer.add_string buf (Fmt.str "\n  state %s {\n" st.s_name);
      List.iter
        (fun g -> Buffer.add_string buf (print_guard g ^ "\n"))
        st.s_guards;
      Buffer.add_string buf "  }\n")
    states

let to_string (sys : Ir.system) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Fmt.str "system %s\n\nhome {\n" sys.sys_name);
  print_process buf sys.home;
  Buffer.add_string buf "}\n\nremote {\n";
  print_process buf sys.remote;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
