type initiator = Remote_initiated | Home_initiated

type pair = { req : string; repl : string; initiator : initiator }

type report = { pairs : pair list; rejected : (string * string) list }

let pp_pair ppf p =
  Fmt.pf ppf "%s/%s (%s-initiated)" p.req p.repl
    (match p.initiator with
    | Remote_initiated -> "remote"
    | Home_initiated -> "home")

exception Reject of string

let reject fmt = Fmt.kstr (fun s -> raise (Reject s)) fmt

module Sset = Set.Make (String)

let state_exn p name =
  match Ir.find_state p name with
  | Some st -> st
  | None -> invalid_arg ("Reqrep: unknown state " ^ name)

(* All (state, guard) pairs of a process. *)
let guards_of (p : Ir.process) =
  List.concat_map
    (fun (st : Ir.state) -> List.map (fun g -> (st, g)) st.Ir.s_guards)
    p.p_states

(* ---- Remote side of a remote-initiated pair -------------------------- *)

(* Every send of [m] must be followed immediately by a single
   unconditional wait for one fixed reply message. *)
let remote_reply_of (remote : Ir.process) m =
  let sends =
    List.filter
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Send (Ir.To_home, m', _) -> m' = m
        | _ -> false)
      (guards_of remote)
  in
  let reply_of ((_, g) : Ir.state * Ir.guard) =
    let wait = state_exn remote g.Ir.g_target in
    match wait.Ir.s_guards with
    | [ { g_cond = Expr.True; g_choose = []; g_action = Ir.Recv (Ir.From_home, rm, _); _ } ] ->
      rm
    | _ ->
      reject "send of %s is not followed by a single unconditional wait" m
  in
  match List.map reply_of sends with
  | [] -> reject "%s is never sent by the remote" m
  | rm :: rest ->
    if List.for_all (( = ) rm) rest then rm
    else reject "sends of %s wait for different replies" m

(* Every receive of the reply must be one of the wait states reached from a
   send of [m]; otherwise a stray reply could be mistaken for an ack. *)
let check_reply_only_in_waits (remote : Ir.process) m rm =
  let wait_states =
    List.filter_map
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Send (Ir.To_home, m', _) when m' = m -> Some g.Ir.g_target
        | _ -> None)
      (guards_of remote)
  in
  List.iter
    (fun ((st, g) : Ir.state * Ir.guard) ->
      match g.Ir.g_action with
      | Ir.Recv (Ir.From_home, rm', _) when rm' = rm ->
        if not (List.mem st.Ir.s_name wait_states) then
          reject "reply %s is also received outside the wait for %s" rm m
      | _ -> ())
    (guards_of remote)

(* ---- Home side of a remote-initiated pair ---------------------------- *)

(* Alias propagation: which variables are known to hold the requester's id
   after simultaneous assignments?  RHS reads the post-binding scratch
   environment, so [j := i] where [i] is the sender binder is an alias. *)
let propagate aliases assigns =
  let kept =
    Sset.filter (fun x -> not (List.mem_assoc x assigns)) aliases
  in
  List.fold_left
    (fun acc (lhs, rhs) ->
      match rhs with
      | Expr.Var a when Sset.mem a aliases -> Sset.add lhs acc
      | _ -> acc)
    kept assigns

let mentions_alias aliases e =
  List.exists (fun x -> Sset.mem x aliases) (Expr.vars e)

(* Walk the home automaton from the state reached after consuming [m],
   requiring that the next interaction with the requester on every path is
   an unconditional send of [rm], and that such a send stays reachable. *)
let walk_home_paths (home : Ir.process) ~m ~rm ~start ~aliases =
  let module Node = struct
    type t = string * Sset.t

    let compare (s1, a1) (s2, a2) =
      match String.compare s1 s2 with
      | 0 -> Sset.compare a1 a2
      | c -> c
  end in
  let module Nset = Set.Make (Node) in
  let visited = ref Nset.empty in
  let replying = ref Nset.empty in
  let edges = ref [] in
  let rec dfs (node : Node.t) =
    if Nset.mem node !visited then ()
    else begin
      visited := Nset.add node !visited;
      let st_name, aliases = node in
      let st = state_exn home st_name in
      List.iter
        (fun (g : Ir.guard) ->
          (* choose binders are rebound nondeterministically: they cannot
             be trusted to still hold the requester *)
          let aliases =
            List.fold_left
              (fun a (x, _) -> Sset.remove x a)
              aliases g.Ir.g_choose
          in
          let continue_to aliases' =
            let node' = (g.Ir.g_target, propagate aliases' g.Ir.g_assigns) in
            edges := (node, node') :: !edges;
            dfs node'
          in
          match g.Ir.g_action with
          | Ir.Tau _ -> continue_to aliases
          | Ir.Send (Ir.To_remote e, m', _) ->
            if mentions_alias aliases e then
              if
                m' = rm
                && g.Ir.g_cond = Expr.True
                && g.Ir.g_choose = []
                && (match e with Expr.Var _ -> true | _ -> false)
              then replying := Nset.add node !replying
                (* path ends: the reply is sent *)
              else
                reject
                  "home interacts with the requester of %s other than by \
                   replying %s (at state %s)"
                  m rm st_name
            else continue_to aliases
          | Ir.Send (Ir.To_home, _, _) | Ir.Recv (Ir.From_home, _, _) ->
            reject "home process is malformed"
          | Ir.Recv (Ir.From_remote e, _, _) ->
            if mentions_alias aliases e then
              reject
                "home receives from the requester of %s before replying \
                 (at state %s)"
                m st_name
            else continue_to aliases
          | Ir.Recv (Ir.From_any_remote y, _, _) ->
            (* rebinding [y] kills the alias; the requester itself cannot
               send here because it is blocked waiting for the reply *)
            continue_to (Sset.remove y aliases))
        st.Ir.s_guards
    end
  in
  let start_node = (start, aliases) in
  dfs start_node;
  (* every visited node must be able to reach a replying node *)
  let can_reach = ref !replying in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, b) ->
        if Nset.mem b !can_reach && not (Nset.mem a !can_reach) then begin
          can_reach := Nset.add a !can_reach;
          changed := true
        end)
      !edges
  done;
  Nset.iter
    (fun ((st, _) as node) ->
      if not (Nset.mem node !can_reach) then
        reject "after consuming %s the home can reach state %s from which \
                no reply %s is possible" m st rm)
    !visited

let check_home_side (home : Ir.process) ~m ~rm =
  let recvs =
    List.filter
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Recv ((Ir.From_any_remote _ | Ir.From_remote _), m', _) -> m' = m
        | _ -> false)
      (guards_of home)
  in
  if recvs = [] then reject "%s is never received by the home" m;
  List.iter
    (fun ((_, g) : Ir.state * Ir.guard) ->
      let aliases0 =
        match g.Ir.g_action with
        | Ir.Recv (Ir.From_any_remote x, _, _) -> Sset.singleton x
        | Ir.Recv (Ir.From_remote (Expr.Var a), _, _) -> Sset.singleton a
        | _ -> reject "receive of %s does not name the requester" m
      in
      walk_home_paths home ~m ~rm ~start:g.Ir.g_target
        ~aliases:(propagate aliases0 g.Ir.g_assigns))
    recvs

(* ---- Home-initiated pairs --------------------------------------------- *)

(* From the state a remote reaches after consuming [m], only internal (tau)
   moves may happen before a single active send; all such sends must carry
   the same reply message. *)
let remote_continuation_replies (remote : Ir.process) m =
  let recvs =
    List.filter
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Recv (Ir.From_home, m', _) -> m' = m
        | _ -> false)
      (guards_of remote)
  in
  if recvs = [] then reject "%s is never received by a remote" m;
  let rec replies_from seen st_name =
    if List.mem st_name seen then
      reject "remote loops internally after receiving %s" m;
    let st = state_exn remote st_name in
    match st.Ir.s_guards with
    | [ { g_action = Ir.Send (Ir.To_home, rm, _); g_cond = Expr.True; _ } ] ->
      [ rm ]
    | guards when Ir.state_is_internal st && guards <> [] ->
      List.concat_map
        (fun (g : Ir.guard) -> replies_from (st_name :: seen) g.Ir.g_target)
        guards
    | _ ->
      reject
        "remote does not answer %s with a single reply after local actions \
         (stuck at state %s)"
        m st_name
  in
  let all =
    List.concat_map
      (fun ((_, g) : Ir.state * Ir.guard) -> replies_from [] g.Ir.g_target)
      recvs
  in
  match all with
  | [] -> reject "no reply found for %s" m
  | rm :: rest ->
    if List.for_all (( = ) rm) rest then rm
    else reject "receives of %s are answered with different replies" m

(* The home's send of [m] to remote [e] must lead to a state containing an
   unconditional receive of [rm] from the syntactically identical [e]. *)
let check_home_awaits (home : Ir.process) ~m ~rm =
  List.iter
    (fun ((st, g) : Ir.state * Ir.guard) ->
      match g.Ir.g_action with
      | Ir.Send (Ir.To_remote e, m', _) when m' = m ->
        let stable =
          match e with
          | Expr.Var a -> not (List.mem_assoc a g.Ir.g_assigns)
          | _ -> false
        in
        if not stable then
          reject "target of %s (at state %s) is not a stable variable" m
            st.Ir.s_name;
        let t = state_exn home g.Ir.g_target in
        let has_wait =
          List.exists
            (fun (g' : Ir.guard) ->
              match g'.Ir.g_action with
              | Ir.Recv (Ir.From_remote e', rm', _) ->
                rm' = rm && e' = e && g'.Ir.g_cond = Expr.True
                && g'.Ir.g_choose = []
              | _ -> false)
            t.Ir.s_guards
        in
        if not has_wait then
          reject "home does not wait for %s from the target of %s" rm m
      | _ -> ())
    (guards_of home)

(* ---- Top level -------------------------------------------------------- *)

let analyze (sys : Ir.system) =
  let remote_sent_msgs =
    List.filter_map
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Send (Ir.To_home, m, _) -> Some m
        | _ -> None)
      (guards_of sys.remote)
    |> List.sort_uniq String.compare
  in
  let home_sent_msgs =
    List.filter_map
      (fun ((_, g) : Ir.state * Ir.guard) ->
        match g.Ir.g_action with
        | Ir.Send (Ir.To_remote _, m, _) -> Some m
        | _ -> None)
      (guards_of sys.home)
    |> List.sort_uniq String.compare
  in
  let pairs = ref [] and rejected = ref [] in
  List.iter
    (fun m ->
      match
        let rm = remote_reply_of sys.remote m in
        check_reply_only_in_waits sys.remote m rm;
        check_home_side sys.home ~m ~rm;
        rm
      with
      | rm ->
        pairs := { req = m; repl = rm; initiator = Remote_initiated } :: !pairs
      | exception Reject reason -> rejected := (m, reason) :: !rejected)
    remote_sent_msgs;
  List.iter
    (fun m ->
      match
        let rm = remote_continuation_replies sys.remote m in
        check_home_awaits sys.home ~m ~rm;
        rm
      with
      | rm ->
        pairs := { req = m; repl = rm; initiator = Home_initiated } :: !pairs
      | exception Reject reason -> rejected := (m, reason) :: !rejected)
    home_sent_msgs;
  (* pairs must not share messages: drop any pair that overlaps an earlier
     accepted one (deterministic order: remote-initiated first) *)
  let pairs = List.rev !pairs in
  let used = ref Sset.empty in
  let pairs =
    List.filter
      (fun p ->
        if Sset.mem p.req !used || Sset.mem p.repl !used then begin
          rejected := (p.req, "overlaps another request/reply pair") :: !rejected;
          false
        end
        else begin
          used := Sset.add p.req (Sset.add p.repl !used);
          true
        end)
      pairs
  in
  { pairs; rejected = List.rev !rejected }
