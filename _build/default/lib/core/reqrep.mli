(** Detection of request/reply rendezvous pairs (paper §3.3).

    The generic refinement turns each rendezvous into a request plus an
    ack.  When two messages [req] and [repl] always occur as
    [h!req(e); h?repl(v)] in the remote node and the home always answers a
    consumed [req] from remote [i] with [r(i)!repl] before any other
    interaction with [i], both acks can be dropped: the reply doubles as
    the ack of the request, and the requester is guaranteed ready for the
    reply.  Symmetrically for pairs initiated by the home (the remote must
    answer [req] with [repl] after local actions only).

    The analysis is syntactic, like the paper's side condition.  Alias
    tracking follows the requester's identity through assignments
    ([j := i]); expressions that might denote the requester but cannot be
    proven to are rejected conservatively. *)

type initiator = Remote_initiated | Home_initiated

type pair = { req : string; repl : string; initiator : initiator }

type report = {
  pairs : pair list;
  rejected : (string * string) list;
      (** [(msg, reason)] for messages considered but not optimizable *)
}

val analyze : Ir.system -> report
(** Requires a system that passed {!Validate.check}. *)

val pp_pair : pair Fmt.t
