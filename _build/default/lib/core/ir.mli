(** The rendezvous-protocol intermediate representation.

    A protocol is a pair of finite-state processes in a star topology: one
    {e home} node and one {e remote} node template that is replicated [n]
    times when the system is instantiated (paper §2.4).  Processes
    communicate only by CSP-style rendezvous with direct addressing
    (paper §2.3): the home addresses remotes by identity, remotes address
    only the home.

    A state's guards determine its class (paper §2.4): a state whose guards
    are all [Tau] is an {e internal} state; a state with at least one
    [Send]/[Recv] guard is a {e communication} state. *)

type target =
  | To_home  (** legal only in the remote process *)
  | To_remote of Expr.t  (** [r(e)!...]; legal only in the home process *)

type source =
  | From_home  (** legal only in the remote process *)
  | From_any_remote of string
      (** [r(i)?msg]: accept from any remote, binding its id to the named
          process variable (paper Figure 2's [r(i)?req]) *)
  | From_remote of Expr.t  (** [r(e)?msg]: accept only from remote [e] *)

type action =
  | Send of target * string * Expr.t list
      (** active participation: [peer!msg(e1, ..., ek)] *)
  | Recv of source * string * string list
      (** passive participation: [peer?msg(v1, ..., vk)]; the payload is
          bound to the named process variables *)
  | Tau of string
      (** autonomous internal step (CPU read/write request, cache eviction,
          ...), labeled for traces *)

type guard = {
  g_cond : Expr.b;
      (** enabling condition, evaluated {e after} binding the [choose]
          binders and, for [Recv], the message payload and sender *)
  g_choose : (string * Expr.t) list;
      (** nondeterministic binders: [(x, s)] binds the process variable [x]
          to each member of the set [s] in turn *)
  g_action : action;
  g_assigns : (string * Expr.t) list;
      (** simultaneous assignments performed when the guard fires (for
          communication guards: when the rendezvous completes) *)
  g_target : string;  (** next state *)
}

type state = { s_name : string; s_guards : guard list }

type process = {
  p_name : string;
  p_vars : (string * Value.domain) list;
  p_init_state : string;
  p_init_env : (string * Value.t) list;
      (** overrides of the per-domain defaults ({!Value.default}) *)
  p_states : state list;
}

type system = { sys_name : string; home : process; remote : process }

val state_is_internal : state -> bool
(** True iff every guard is a [Tau] (or there are no guards). *)

val find_state : process -> string -> state option
val action_msg : action -> string option

val pp_action : action Fmt.t
val pp_guard : guard Fmt.t
val pp_process : process Fmt.t
val pp_system : system Fmt.t
