type error = { where : string; what : string }

type direction = Remote_to_home | Home_to_remote

type signature = {
  msg : string;
  direction : direction;
  payload : Expr.ty list;
}

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

(* Accumulating checker: errors are collected rather than failing fast so a
   protocol author sees everything wrong at once. *)
type ctx = { mutable errors : error list }

let err ctx where fmt =
  Fmt.kstr (fun what -> ctx.errors <- { where; what } :: ctx.errors) fmt

let pp_dir ppf = function
  | Remote_to_home -> Fmt.string ppf "remote->home"
  | Home_to_remote -> Fmt.string ppf "home->remote"

(* Message signature table built incrementally; conflicting uses are
   reported at the use site. *)
let record_signature ctx ~where table msg direction payload =
  match Hashtbl.find_opt table msg with
  | None -> Hashtbl.add table msg { msg; direction; payload }
  | Some s ->
    if s.direction <> direction then
      err ctx where "message %s used both %a and %a" msg pp_dir s.direction
        pp_dir direction;
    if s.payload <> payload then
      err ctx where
        "message %s used with payload (%a) here but (%a) elsewhere" msg
        Fmt.(list ~sep:comma Expr.pp_ty)
        payload
        Fmt.(list ~sep:comma Expr.pp_ty)
        s.payload

let check_process ctx table ~is_remote (p : Ir.process) =
  let pname = p.p_name in
  (* variable environment *)
  let var_domain = Hashtbl.create 16 in
  List.iter
    (fun (x, d) ->
      if Hashtbl.mem var_domain x then
        err ctx pname "duplicate variable %s" x
      else Hashtbl.add var_domain x d)
    p.p_vars;
  let var_ty x =
    Option.map Expr.ty_of_domain (Hashtbl.find_opt var_domain x)
  in
  let states = Hashtbl.create 16 in
  List.iter
    (fun (st : Ir.state) ->
      if Hashtbl.mem states st.Ir.s_name then
        err ctx pname "duplicate state %s" st.Ir.s_name
      else Hashtbl.add states st.Ir.s_name st)
    p.p_states;
  if not (Hashtbl.mem states p.p_init_state) then
    err ctx pname "initial state %s not defined" p.p_init_state;
  List.iter
    (fun (x, v) ->
      match Hashtbl.find_opt var_domain x with
      | None -> err ctx pname "initial value for undeclared variable %s" x
      | Some d ->
        (* range checks that depend on n happen at instantiation time *)
        let vt =
          match v with
          | Value.Vunit -> Expr.Tunit
          | Value.Vbool _ -> Expr.Tbool
          | Value.Vint _ -> Expr.Tint
          | Value.Vrid _ -> Expr.Trid
          | Value.Vset _ -> Expr.Tset
        in
        if Expr.ty_of_domain d <> vt then
          err ctx pname "initial value %a has wrong type for %s" Value.pp v x)
    p.p_init_env;
  let in_remote = is_remote in
  let check_expr where want e =
    match Expr.infer ~var_ty ~in_remote e with
    | Error msg -> err ctx where "%s" msg
    | Ok ty -> (
      match want with
      | Some w when w <> ty ->
        err ctx where "expected %a, found %a in %a" Expr.pp_ty w Expr.pp_ty ty
          Expr.pp e
      | _ -> ())
  in
  let infer_ty where e =
    match Expr.infer ~var_ty ~in_remote e with
    | Ok ty -> Some ty
    | Error msg ->
      err ctx where "%s" msg;
      None
  in
  let check_guard where (g : Ir.guard) =
    (* choose binders *)
    List.iter
      (fun (x, s) ->
        (match Hashtbl.find_opt var_domain x with
        | Some Value.Drid -> ()
        | Some d ->
          err ctx where "choose binder %s must have domain rid, has %a" x
            Value.pp_domain d
        | None -> err ctx where "choose binder %s is not declared" x);
        check_expr where (Some Expr.Tset) s)
      g.g_choose;
    (match Expr.check_b ~var_ty ~in_remote g.g_cond with
    | Ok () -> ()
    | Error msg -> err ctx where "in condition: %s" msg);
    (* action *)
    (match g.g_action with
    | Ir.Tau _ -> ()
    | Ir.Send (target, msg, args) ->
      (match (target, is_remote) with
      | Ir.To_home, true -> ()
      | Ir.To_home, false -> err ctx where "home cannot send to home"
      | Ir.To_remote _, true ->
        err ctx where "remote cannot address another remote (star topology)"
      | Ir.To_remote e, false -> check_expr where (Some Expr.Trid) e);
      let payload = List.filter_map (infer_ty where) args in
      if List.length payload = List.length args then
        record_signature ctx ~where table msg
          (if is_remote then Remote_to_home else Home_to_remote)
          payload
    | Ir.Recv (source, msg, vars) ->
      (match (source, is_remote) with
      | Ir.From_home, true -> ()
      | Ir.From_home, false -> err ctx where "home cannot receive from home"
      | (Ir.From_any_remote _ | Ir.From_remote _), true ->
        err ctx where "remote cannot receive from another remote"
      | Ir.From_any_remote x, false -> (
        match Hashtbl.find_opt var_domain x with
        | Some Value.Drid -> ()
        | Some d ->
          err ctx where "sender binder %s must have domain rid, has %a" x
            Value.pp_domain d
        | None -> err ctx where "sender binder %s is not declared" x)
      | Ir.From_remote e, false -> check_expr where (Some Expr.Trid) e);
      let payload =
        List.filter_map
          (fun x ->
            match var_ty x with
            | Some ty -> Some ty
            | None ->
              err ctx where "payload variable %s is not declared" x;
              None)
          vars
      in
      if List.length payload = List.length vars then
        record_signature ctx ~where table msg
          (if is_remote then Home_to_remote else Remote_to_home)
          payload);
    (* assignments *)
    List.iter
      (fun (x, e) ->
        match var_ty x with
        | None -> err ctx where "assignment to undeclared variable %s" x
        | Some ty -> check_expr where (Some ty) e)
      g.g_assigns;
    if not (Hashtbl.mem states g.g_target) then
      err ctx where "target state %s not defined" g.g_target
  in
  List.iter
    (fun (st : Ir.state) ->
      let taus, sends, recvs =
        List.fold_left
          (fun (t, s, r) (g : Ir.guard) ->
            match g.g_action with
            | Ir.Tau _ -> (t + 1, s, r)
            | Ir.Send _ -> (t, s + 1, r)
            | Ir.Recv _ -> (t, s, r + 1))
          (0, 0, 0) st.Ir.s_guards
      in
      let where = Fmt.str "%s state %s" pname st.Ir.s_name in
      if is_remote then begin
        (* §2.4: active = exactly one output guard and nothing else;
           passive = inputs plus optional taus. *)
        if sends > 1 then
          err ctx where "remote state offers %d output guards (max 1)" sends;
        if sends = 1 && (recvs > 0 || taus > 0) then
          err ctx where
            "remote active state must contain only its single output guard"
      end
      else if taus > 0 && (sends > 0 || recvs > 0) then
        err ctx where
          "home state mixes internal (tau) and communication guards";
      List.iteri
        (fun i g -> check_guard (Fmt.str "%s guard %d" where (i + 1)) g)
        st.Ir.s_guards)
    p.p_states;
  (* internal states must not cycle among themselves *)
  let internal st = Ir.state_is_internal st in
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let rec dfs (st : Ir.state) =
    if Hashtbl.mem done_ st.Ir.s_name then ()
    else if Hashtbl.mem visiting st.Ir.s_name then
      err ctx pname "internal states form a cycle through %s" st.Ir.s_name
    else begin
      Hashtbl.add visiting st.Ir.s_name ();
      List.iter
        (fun (g : Ir.guard) ->
          match Hashtbl.find_opt states g.g_target with
          | Some st' when internal st' -> dfs st'
          | _ -> ())
        st.Ir.s_guards;
      Hashtbl.remove visiting st.Ir.s_name;
      Hashtbl.add done_ st.Ir.s_name ()
    end
  in
  List.iter (fun st -> if internal st then dfs st) p.p_states

let check (sys : Ir.system) =
  let ctx = { errors = [] } in
  let table = Hashtbl.create 16 in
  check_process ctx table ~is_remote:false sys.home;
  check_process ctx table ~is_remote:true sys.remote;
  match ctx.errors with
  | [] ->
    Ok
      (Hashtbl.fold (fun _ s acc -> s :: acc) table []
      |> List.sort (fun a b -> String.compare a.msg b.msg))
  | errors -> Error (List.rev errors)

let check_exn sys =
  match check sys with
  | Ok sigs -> sigs
  | Error errors ->
    invalid_arg
      (Fmt.str "invalid protocol %s:@,%a" sys.sys_name
         Fmt.(list ~sep:cut pp_error)
         errors)
