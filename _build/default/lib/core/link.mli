(** Linking: validated {!Ir.system} → executable {!Prog.t}.

    [compile ~n sys] validates the protocol, instantiates it for [n]
    remote nodes, resolves names to slots and indices, and (unless
    [~reqrep:false]) runs the {!Reqrep} analysis and annotates the guards
    so that the refinement drops the acks of detected request/reply
    pairs. *)

val compile :
  ?reqrep:bool -> ?fire_and_forget:string list -> n:int -> Ir.system -> Prog.t
(** @param reqrep apply the §3.3 optimization (default [true])
    @param fire_and_forget remote-to-home messages sent without awaiting
    any response and always admitted by the home.  This reproduces
    hand-optimized designs (the Avalanche migratory protocol's unacked
    [LR], paper §5); such protocols are {e not} covered by the
    refinement's soundness argument and are provided for efficiency
    comparisons.
    @raise Invalid_argument if validation fails, [n < 1], an initial
    value is outside its domain for this [n], or a fire-and-forget
    message is not remote-to-home. *)
