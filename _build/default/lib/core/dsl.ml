let v x = Expr.Var x
let self = Expr.Self
let rid i = Expr.Const (Value.Vrid i)
let int i = Expr.Const (Value.Vint i)
let unit = Expr.Const Value.Vunit
let empty_set = Expr.Const Value.set_empty
let full_set = Expr.Full_set
let ( +~ ) s r = Expr.Set_add (s, r)
let ( -~ ) s r = Expr.Set_remove (s, r)
let ( ==~ ) a b = Expr.Eq (a, b)
let ( &&~ ) a b = Expr.And (a, b)
let not_ b = Expr.Not b
let mem r s = Expr.Set_mem (r, s)
let is_empty s = Expr.Set_is_empty s

let guard ?(cond = Expr.True) ?(choose = []) ?(assigns = []) action ~goto =
  Ir.
    {
      g_cond = cond;
      g_choose = choose;
      g_action = action;
      g_assigns = assigns;
      g_target = goto;
    }

let tau ?cond ?choose ?assigns label ~goto =
  guard ?cond ?choose ?assigns (Ir.Tau label) ~goto

let send_home ?cond ?choose ?assigns msg args ~goto =
  guard ?cond ?choose ?assigns (Ir.Send (Ir.To_home, msg, args)) ~goto

let recv_home ?cond ?choose ?assigns msg vars ~goto =
  guard ?cond ?choose ?assigns (Ir.Recv (Ir.From_home, msg, vars)) ~goto

let send_to ?cond ?choose ?assigns dst msg args ~goto =
  guard ?cond ?choose ?assigns (Ir.Send (Ir.To_remote dst, msg, args)) ~goto

let recv_any ?cond ?choose ?assigns binder msg vars ~goto =
  guard ?cond ?choose ?assigns
    (Ir.Recv (Ir.From_any_remote binder, msg, vars))
    ~goto

let recv_from ?cond ?choose ?assigns src msg vars ~goto =
  guard ?cond ?choose ?assigns (Ir.Recv (Ir.From_remote src, msg, vars)) ~goto

let state name guards = Ir.{ s_name = name; s_guards = guards }

let process name ~vars ~init ?(init_env = []) states =
  Ir.
    {
      p_name = name;
      p_vars = vars;
      p_init_state = init;
      p_init_env = init_env;
      p_states = states;
    }

let system name ~home ~remote = Ir.{ sys_name = name; home; remote }
