type cexpr =
  | C_const of Value.t
  | C_var of int
  | C_self
  | C_set_add of cexpr * cexpr
  | C_set_remove of cexpr * cexpr
  | C_set_singleton of cexpr
  | C_succ of cexpr

type cbool =
  | B_true
  | B_not of cbool
  | B_and of cbool * cbool
  | B_or of cbool * cbool
  | B_eq of cexpr * cexpr
  | B_mem of cexpr * cexpr
  | B_empty of cexpr

type ann =
  | Plain
  | Rr_request of string
  | Rr_reply_send
  | Rr_silent_consume
  | Rr_await_repl of string

type caction =
  | C_send_home of string * cexpr list
  | C_send_remote of cexpr * string * cexpr list
  | C_recv_home of string * int list
  | C_recv_any of int * string * int list
  | C_recv_from of cexpr * string * int list
  | C_tau of string

type cguard = {
  cg_cond : cbool;
  cg_choose : (int * cexpr) list;
  cg_action : caction;
  cg_assigns : (int * cexpr) list;
  cg_target : int;
  cg_ann : ann;
}

type cstate = {
  cs_name : string;
  cs_guards : cguard array;
  cs_internal : bool;
  cs_active : int option;
  cs_sends : int list;
}

type proc = {
  p_name : string;
  p_var_names : string array;
  p_domains : Value.domain array;
  p_states : cstate array;
  p_init : int;
  p_init_env : Value.t array;
}

type t = {
  t_name : string;
  n : int;
  home : proc;
  remote : proc;
  pairs : Reqrep.pair list;
  ff_msgs : string list;
}

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let as_rid = function
  | Value.Vrid r -> r
  | v -> error "expected a remote id, got %a" Value.pp v

let as_int = function
  | Value.Vint i -> i
  | v -> error "expected an int, got %a" Value.pp v

let rec eval ~env ~self e =
  match e with
  | C_const v -> v
  | C_var i -> env.(i)
  | C_self -> (
    match self with
    | Some r -> Value.Vrid r
    | None -> error "self outside a remote process")
  | C_set_add (s, r) ->
    Value.set_add (as_rid (eval ~env ~self r)) (eval ~env ~self s)
  | C_set_remove (s, r) ->
    Value.set_remove (as_rid (eval ~env ~self r)) (eval ~env ~self s)
  | C_set_singleton r ->
    Value.set_add (as_rid (eval ~env ~self r)) Value.set_empty
  | C_succ e -> Value.Vint (as_int (eval ~env ~self e) + 1)

let rec eval_b ~env ~self b =
  match b with
  | B_true -> true
  | B_not b -> not (eval_b ~env ~self b)
  | B_and (a, b) -> eval_b ~env ~self a && eval_b ~env ~self b
  | B_or (a, b) -> eval_b ~env ~self a || eval_b ~env ~self b
  | B_eq (a, b) -> Value.equal (eval ~env ~self a) (eval ~env ~self b)
  | B_mem (r, s) ->
    Value.set_mem (as_rid (eval ~env ~self r)) (eval ~env ~self s)
  | B_empty s -> Value.set_is_empty (eval ~env ~self s)

let state_index proc name =
  let rec find i =
    if i >= Array.length proc.p_states then raise Not_found
    else if proc.p_states.(i).cs_name = name then i
    else find (i + 1)
  in
  find 0

let var_index proc name =
  let rec find i =
    if i >= Array.length proc.p_var_names then raise Not_found
    else if proc.p_var_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let guard_instances ~self env (g : cguard) ~extra =
  let scratch = Array.copy env in
  List.iter (fun (slot, v) -> scratch.(slot) <- v) extra;
  let rec expand scratch = function
    | [] -> [ scratch ]
    | (slot, set_expr) :: rest ->
      let set = eval ~env:scratch ~self set_expr in
      List.concat_map
        (fun r ->
          let scratch' = Array.copy scratch in
          scratch'.(slot) <- Value.Vrid r;
          expand scratch' rest)
        (Value.set_members set)
  in
  expand scratch g.cg_choose
  |> List.filter (fun env -> eval_b ~env ~self g.cg_cond)

let complete ~self scratch (g : cguard) =
  let rhs =
    List.map (fun (slot, e) -> (slot, eval ~env:scratch ~self e)) g.cg_assigns
  in
  let env' = Array.copy scratch in
  List.iter (fun (slot, v) -> env'.(slot) <- v) rhs;
  env'

let rec pp_cexpr proc ppf = function
  | C_const v -> Value.pp ppf v
  | C_var i -> Fmt.string ppf proc.p_var_names.(i)
  | C_self -> Fmt.string ppf "self"
  | C_set_add (s, r) ->
    Fmt.pf ppf "(%a + %a)" (pp_cexpr proc) s (pp_cexpr proc) r
  | C_set_remove (s, r) ->
    Fmt.pf ppf "(%a - %a)" (pp_cexpr proc) s (pp_cexpr proc) r
  | C_set_singleton r -> Fmt.pf ppf "{%a}" (pp_cexpr proc) r
  | C_succ e -> Fmt.pf ppf "(%a + 1)" (pp_cexpr proc) e

let pp_caction proc ppf action =
  let args ppf = function
    | [] -> ()
    | l -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma (pp_cexpr proc)) l
  in
  let vars ppf = function
    | [] -> ()
    | l ->
      Fmt.pf ppf "(%a)"
        Fmt.(list ~sep:comma (fun ppf i -> Fmt.string ppf proc.p_var_names.(i)))
        l
  in
  match action with
  | C_send_home (m, a) -> Fmt.pf ppf "h!%s%a" m args a
  | C_send_remote (e, m, a) ->
    Fmt.pf ppf "r(%a)!%s%a" (pp_cexpr proc) e m args a
  | C_recv_home (m, v) -> Fmt.pf ppf "h?%s%a" m vars v
  | C_recv_any (b, m, v) ->
    Fmt.pf ppf "r(%s)?%s%a" proc.p_var_names.(b) m vars v
  | C_recv_from (e, m, v) ->
    Fmt.pf ppf "r(%a)?%s%a" (pp_cexpr proc) e m vars v
  | C_tau l -> Fmt.pf ppf "tau:%s" l

let pp_ann ppf = function
  | Plain -> Fmt.string ppf "plain"
  | Rr_request repl -> Fmt.pf ppf "rr-request(repl=%s)" repl
  | Rr_reply_send -> Fmt.string ppf "rr-reply-send"
  | Rr_silent_consume -> Fmt.string ppf "rr-silent-consume"
  | Rr_await_repl repl -> Fmt.pf ppf "rr-await-repl(%s)" repl
