let rec compile_expr ~n lookup (e : Expr.t) : Prog.cexpr =
  match e with
  | Expr.Const v -> Prog.C_const v
  | Expr.Var x -> Prog.C_var (lookup x)
  | Expr.Self -> Prog.C_self
  | Expr.Set_add (s, r) ->
    Prog.C_set_add (compile_expr ~n lookup s, compile_expr ~n lookup r)
  | Expr.Set_remove (s, r) ->
    Prog.C_set_remove (compile_expr ~n lookup s, compile_expr ~n lookup r)
  | Expr.Set_singleton r -> Prog.C_set_singleton (compile_expr ~n lookup r)
  | Expr.Full_set -> Prog.C_const (Value.Vset ((1 lsl n) - 1))
  | Expr.Succ e -> Prog.C_succ (compile_expr ~n lookup e)

let rec compile_bool ~n lookup (b : Expr.b) : Prog.cbool =
  match b with
  | Expr.True -> Prog.B_true
  | Expr.Not b -> Prog.B_not (compile_bool ~n lookup b)
  | Expr.And (a, b) -> Prog.B_and (compile_bool ~n lookup a, compile_bool ~n lookup b)
  | Expr.Or (a, b) -> Prog.B_or (compile_bool ~n lookup a, compile_bool ~n lookup b)
  | Expr.Eq (a, b) -> Prog.B_eq (compile_expr ~n lookup a, compile_expr ~n lookup b)
  | Expr.Set_mem (r, s) ->
    Prog.B_mem (compile_expr ~n lookup r, compile_expr ~n lookup s)
  | Expr.Set_is_empty s -> Prog.B_empty (compile_expr ~n lookup s)

(* Which annotation does a communication guard get, given the accepted
   request/reply pairs?  See {!Prog.ann}. *)
let annotate_pairs pairs ~is_remote (action : Ir.action) : Prog.ann =
  let find_req m init =
    List.find_opt
      (fun (p : Reqrep.pair) -> p.req = m && p.initiator = init)
      pairs
  in
  let find_repl m init =
    List.find_opt
      (fun (p : Reqrep.pair) -> p.repl = m && p.initiator = init)
      pairs
  in
  match (action, is_remote) with
  | Ir.Send (_, m, _), true -> (
    match find_req m Reqrep.Remote_initiated with
    | Some p -> Prog.Rr_request p.repl
    | None -> (
      match find_repl m Reqrep.Home_initiated with
      | Some _ -> Prog.Rr_reply_send
      | None -> Prog.Plain))
  | Ir.Send (_, m, _), false -> (
    match find_req m Reqrep.Home_initiated with
    | Some p -> Prog.Rr_await_repl p.repl
    | None -> (
      match find_repl m Reqrep.Remote_initiated with
      | Some _ -> Prog.Rr_reply_send
      | None -> Prog.Plain))
  | Ir.Recv (_, m, _), true -> (
    match find_req m Reqrep.Home_initiated with
    | Some _ -> Prog.Rr_silent_consume
    | None -> Prog.Plain)
  | Ir.Recv (_, m, _), false -> (
    match find_req m Reqrep.Remote_initiated with
    | Some _ -> Prog.Rr_silent_consume
    | None -> Prog.Plain)
  | Ir.Tau _, _ -> Prog.Plain

(* Fire-and-forget overrides (hand-optimized protocols) beat the pair
   annotations: the sender moves on immediately and the home consumes
   without acking. *)
let annotate ~ff pairs ~is_remote (action : Ir.action) : Prog.ann =
  let ff_override =
    match action with
    | Ir.Send (Ir.To_home, m, _) when is_remote && List.mem m ff ->
      Some Prog.Rr_reply_send
    | Ir.Recv ((Ir.From_any_remote _ | Ir.From_remote _), m, _)
      when (not is_remote) && List.mem m ff ->
      Some Prog.Rr_silent_consume
    | _ -> None
  in
  match ff_override with
  | Some ann -> ann
  | None -> annotate_pairs pairs ~is_remote action

let compile_process ~n ~is_remote ~ff pairs (p : Ir.process) : Prog.proc =
  let var_names = Array.of_list (List.map fst p.p_vars) in
  let domains = Array.of_list (List.map snd p.p_vars) in
  let var_slot = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.add var_slot x i) var_names;
  let lookup x =
    match Hashtbl.find_opt var_slot x with
    | Some i -> i
    | None -> invalid_arg ("Link: unbound variable " ^ x)
  in
  let state_idx = Hashtbl.create 16 in
  List.iteri
    (fun i (st : Ir.state) -> Hashtbl.add state_idx st.Ir.s_name i)
    p.p_states;
  let state_of x =
    match Hashtbl.find_opt state_idx x with
    | Some i -> i
    | None -> invalid_arg ("Link: unknown state " ^ x)
  in
  let compile_guard (g : Ir.guard) : Prog.cguard =
    let action =
      match g.Ir.g_action with
      | Ir.Send (Ir.To_home, m, args) ->
        Prog.C_send_home (m, List.map (compile_expr ~n lookup) args)
      | Ir.Send (Ir.To_remote e, m, args) ->
        Prog.C_send_remote
          (compile_expr ~n lookup e, m, List.map (compile_expr ~n lookup) args)
      | Ir.Recv (Ir.From_home, m, vars) ->
        Prog.C_recv_home (m, List.map lookup vars)
      | Ir.Recv (Ir.From_any_remote x, m, vars) ->
        Prog.C_recv_any (lookup x, m, List.map lookup vars)
      | Ir.Recv (Ir.From_remote e, m, vars) ->
        Prog.C_recv_from (compile_expr ~n lookup e, m, List.map lookup vars)
      | Ir.Tau l -> Prog.C_tau l
    in
    Prog.
      {
        cg_cond = compile_bool ~n lookup g.Ir.g_cond;
        cg_choose =
          List.map
            (fun (x, s) -> (lookup x, compile_expr ~n lookup s))
            g.Ir.g_choose;
        cg_action = action;
        cg_assigns =
          List.map
            (fun (x, e) -> (lookup x, compile_expr ~n lookup e))
            g.Ir.g_assigns;
        cg_target = state_of g.Ir.g_target;
        cg_ann = annotate ~ff pairs ~is_remote g.Ir.g_action;
      }
  in
  let compile_state (st : Ir.state) : Prog.cstate =
    let guards = Array.of_list (List.map compile_guard st.Ir.s_guards) in
    let is_send i =
      match guards.(i).Prog.cg_action with
      | Prog.C_send_home _ | Prog.C_send_remote _ -> true
      | _ -> false
    in
    let send_indices =
      List.filter is_send (List.init (Array.length guards) Fun.id)
    in
    Prog.
      {
        cs_name = st.Ir.s_name;
        cs_guards = guards;
        cs_internal = Ir.state_is_internal st;
        cs_active =
          (match send_indices with [ i ] when is_remote -> Some i | _ -> None);
        cs_sends = send_indices;
      }
  in
  let init_env =
    Array.map Value.default domains
  in
  List.iter
    (fun (x, v) ->
      let slot = lookup x in
      if not (Value.member ~n domains.(slot) v) then
        invalid_arg
          (Fmt.str "Link: initial value %a of %s.%s outside its domain for \
                    n = %d"
             Value.pp v p.p_name x n);
      init_env.(slot) <- v)
    p.p_init_env;
  Prog.
    {
      p_name = p.Ir.p_name;
      p_var_names = var_names;
      p_domains = domains;
      p_states = Array.of_list (List.map compile_state p.p_states);
      p_init = state_of p.p_init_state;
      p_init_env = init_env;
    }

let compile ?(reqrep = true) ?(fire_and_forget = []) ~n (sys : Ir.system) :
    Prog.t =
  if n < 1 then invalid_arg "Link.compile: n must be at least 1";
  let sigs = Validate.check_exn sys in
  List.iter
    (fun m ->
      match List.find_opt (fun (s : Validate.signature) -> s.msg = m) sigs with
      | Some { direction = Validate.Remote_to_home; _ } -> ()
      | Some _ ->
        invalid_arg
          ("Link.compile: fire-and-forget only applies to remote-to-home \
            messages: " ^ m)
      | None -> invalid_arg ("Link.compile: unknown message " ^ m))
    fire_and_forget;
  let pairs = if reqrep then (Reqrep.analyze sys).pairs else [] in
  let pairs =
    List.filter
      (fun (p : Reqrep.pair) ->
        not
          (List.mem p.req fire_and_forget || List.mem p.repl fire_and_forget))
      pairs
  in
  let ff = fire_and_forget in
  {
    t_name = sys.sys_name;
    n;
    home = compile_process ~n ~is_remote:false ~ff pairs sys.home;
    remote = compile_process ~n ~is_remote:true ~ff pairs sys.remote;
    pairs;
    ff_msgs = fire_and_forget;
  }
