(** Combinators for writing rendezvous protocols concisely.

    Example (a one-line lock server's home node):
    {[
      let home =
        Dsl.(
          process "home" ~vars:[ ("o", Value.Drid) ] ~init:"U"
            [
              state "U" [ recv_any "o" "acq" [] ~goto:"G" ];
              state "G" [ send_to (v "o") "grant" [] ~goto:"L" ];
              state "L" [ recv_from (v "o") "rel" [] ~goto:"U" ];
            ])
    ]} *)

(** {2 Expressions} *)

val v : string -> Expr.t
val self : Expr.t
val rid : int -> Expr.t
val int : int -> Expr.t
val unit : Expr.t
val empty_set : Expr.t

val full_set : Expr.t
(** All remote ids; resolved at instantiation time. *)

(** [s +~ r] adds remote [r] to set [s]; [s -~ r] removes it. *)
val ( +~ ) : Expr.t -> Expr.t -> Expr.t

val ( -~ ) : Expr.t -> Expr.t -> Expr.t

val ( ==~ ) : Expr.t -> Expr.t -> Expr.b
val ( &&~ ) : Expr.b -> Expr.b -> Expr.b
val not_ : Expr.b -> Expr.b
val mem : Expr.t -> Expr.t -> Expr.b
val is_empty : Expr.t -> Expr.b

(** {2 Guards}

    All guard builders accept [?cond], [?choose] and [?assigns]. *)

type 'a gb :=
  ?cond:Expr.b ->
  ?choose:(string * Expr.t) list ->
  ?assigns:(string * Expr.t) list ->
  'a

val tau : (string -> goto:string -> Ir.guard) gb
val send_home : (string -> Expr.t list -> goto:string -> Ir.guard) gb
val recv_home : (string -> string list -> goto:string -> Ir.guard) gb
val send_to : (Expr.t -> string -> Expr.t list -> goto:string -> Ir.guard) gb

val recv_any :
  (string -> string -> string list -> goto:string -> Ir.guard) gb
(** [recv_any binder msg payload_vars ~goto]: home input from any remote. *)

val recv_from :
  (Expr.t -> string -> string list -> goto:string -> Ir.guard) gb

(** {2 Processes and systems} *)

val state : string -> Ir.guard list -> Ir.state

val process :
  string ->
  vars:(string * Value.domain) list ->
  init:string ->
  ?init_env:(string * Value.t) list ->
  Ir.state list ->
  Ir.process

val system : string -> home:Ir.process -> remote:Ir.process -> Ir.system
