(** Expressions over protocol variables.

    Expressions appear in guards (enabling conditions, message payloads,
    assignments).  They are evaluated against an environment mapping
    variable names to {!Value.t}.  Inside a remote-node process, [Self]
    denotes the node's own identity. *)

type t =
  | Const of Value.t
  | Var of string
  | Self  (** the remote node's own id; ill-typed in the home process *)
  | Set_add of t * t  (** [Set_add (set, rid)] *)
  | Set_remove of t * t
  | Set_singleton of t
  | Full_set
      (** the set of all remote ids; resolved to a constant when the
          protocol is instantiated for a concrete [n] ({!Link.compile}) *)
  | Succ of t  (** integer increment *)

type b =
  | True
  | Not of b
  | And of b * b
  | Or of b * b
  | Eq of t * t
  | Set_mem of t * t  (** [Set_mem (rid, set)] *)
  | Set_is_empty of t

(** Simple types, the erasure of {!Value.domain} (integer ranges collapse). *)
type ty = Tunit | Tbool | Tint | Trid | Tset

exception Eval_error of string

val eval : lookup:(string -> Value.t) -> self:Value.rid option -> t -> Value.t
(** Evaluate; raises {!Eval_error} on unbound variables, [Self] outside a
    remote, or set operations on non-sets.  Validated protocols never
    raise. *)

val eval_b : lookup:(string -> Value.t) -> self:Value.rid option -> b -> bool

val ty_of_domain : Value.domain -> ty

val infer :
  var_ty:(string -> ty option) -> in_remote:bool -> t -> (ty, string) result
(** Infer the type of an expression, or return an error message naming the
    ill-typed sub-expression. *)

val check_b :
  var_ty:(string -> ty option) -> in_remote:bool -> b -> (unit, string) result

val vars : t -> string list
(** Variable names read by the expression (without duplicates). *)

val vars_b : b -> string list

val pp : t Fmt.t
val pp_b : b Fmt.t
val pp_ty : ty Fmt.t
