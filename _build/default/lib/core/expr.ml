type t =
  | Const of Value.t
  | Var of string
  | Self
  | Set_add of t * t
  | Set_remove of t * t
  | Set_singleton of t
  | Full_set
  | Succ of t

type b =
  | True
  | Not of b
  | And of b * b
  | Or of b * b
  | Eq of t * t
  | Set_mem of t * t
  | Set_is_empty of t

type ty = Tunit | Tbool | Tint | Trid | Tset

exception Eval_error of string

let error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let as_rid = function
  | Value.Vrid r -> r
  | v -> error "expected a remote id, got %a" Value.pp v

let as_int = function
  | Value.Vint i -> i
  | v -> error "expected an int, got %a" Value.pp v

let as_set = function
  | Value.Vset _ as v -> v
  | v -> error "expected a set, got %a" Value.pp v

let rec eval ~lookup ~self e =
  match e with
  | Const v -> v
  | Var x -> lookup x
  | Self -> (
    match self with
    | Some r -> Value.Vrid r
    | None -> error "Self used outside a remote process")
  | Set_add (s, r) ->
    Value.set_add (as_rid (eval ~lookup ~self r)) (as_set (eval ~lookup ~self s))
  | Set_remove (s, r) ->
    Value.set_remove
      (as_rid (eval ~lookup ~self r))
      (as_set (eval ~lookup ~self s))
  | Set_singleton r ->
    Value.set_add (as_rid (eval ~lookup ~self r)) Value.set_empty
  | Full_set ->
    error "Full_set must be resolved at instantiation time (Link.compile)"
  | Succ e -> Value.Vint (as_int (eval ~lookup ~self e) + 1)

let rec eval_b ~lookup ~self b =
  match b with
  | True -> true
  | Not b -> not (eval_b ~lookup ~self b)
  | And (a, b) -> eval_b ~lookup ~self a && eval_b ~lookup ~self b
  | Or (a, b) -> eval_b ~lookup ~self a || eval_b ~lookup ~self b
  | Eq (a, b) -> Value.equal (eval ~lookup ~self a) (eval ~lookup ~self b)
  | Set_mem (r, s) ->
    Value.set_mem (as_rid (eval ~lookup ~self r)) (eval ~lookup ~self s)
  | Set_is_empty s -> Value.set_is_empty (eval ~lookup ~self s)

let ty_of_domain = function
  | Value.Dunit -> Tunit
  | Value.Dbool -> Tbool
  | Value.Dint _ -> Tint
  | Value.Drid -> Trid
  | Value.Dset -> Tset

let ty_of_value = function
  | Value.Vunit -> Tunit
  | Value.Vbool _ -> Tbool
  | Value.Vint _ -> Tint
  | Value.Vrid _ -> Trid
  | Value.Vset _ -> Tset

let pp_ty ppf ty =
  Fmt.string ppf
    (match ty with
    | Tunit -> "unit"
    | Tbool -> "bool"
    | Tint -> "int"
    | Trid -> "rid"
    | Tset -> "rid set")

let ( let* ) = Result.bind

let rec infer ~var_ty ~in_remote e =
  let infer = infer ~var_ty ~in_remote in
  let expect want e =
    let* ty = infer e in
    if ty = want then Ok ()
    else Error (Fmt.str "expected %a, found %a" pp_ty want pp_ty ty)
  in
  match e with
  | Const v -> Ok (ty_of_value v)
  | Var x -> (
    match var_ty x with
    | Some ty -> Ok ty
    | None -> Error (Fmt.str "unbound variable %s" x))
  | Self -> if in_remote then Ok Trid else Error "Self used in the home process"
  | Set_add (s, r) | Set_remove (s, r) ->
    let* () = expect Tset s in
    let* () = expect Trid r in
    Ok Tset
  | Set_singleton r ->
    let* () = expect Trid r in
    Ok Tset
  | Full_set -> Ok Tset
  | Succ e ->
    let* () = expect Tint e in
    Ok Tint

let rec check_b ~var_ty ~in_remote b =
  let check_b' = check_b ~var_ty ~in_remote in
  let infer = infer ~var_ty ~in_remote in
  let expect want e =
    let* ty = infer e in
    if ty = want then Ok ()
    else Error (Fmt.str "expected %a, found %a" pp_ty want pp_ty ty)
  in
  match b with
  | True -> Ok ()
  | Not b -> check_b' b
  | And (a, b) | Or (a, b) ->
    let* () = check_b' a in
    check_b' b
  | Eq (a, b) ->
    let* ta = infer a in
    let* tb = infer b in
    if ta = tb then Ok ()
    else Error (Fmt.str "comparison of %a with %a" pp_ty ta pp_ty tb)
  | Set_mem (r, s) ->
    let* () = expect Trid r in
    expect Tset s
  | Set_is_empty s -> expect Tset s

let rec vars_acc acc = function
  | Const _ | Self -> acc
  | Var x -> if List.mem x acc then acc else x :: acc
  | Set_add (a, b) | Set_remove (a, b) -> vars_acc (vars_acc acc a) b
  | Set_singleton e | Succ e -> vars_acc acc e
  | Full_set -> acc

let vars e = List.rev (vars_acc [] e)

let rec vars_b_acc acc = function
  | True -> acc
  | Not b -> vars_b_acc acc b
  | And (a, b) | Or (a, b) -> vars_b_acc (vars_b_acc acc a) b
  | Eq (a, b) | Set_mem (a, b) -> vars_acc (vars_acc acc a) b
  | Set_is_empty e -> vars_acc acc e

let vars_b b = List.rev (vars_b_acc [] b)

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Self -> Fmt.string ppf "self"
  | Set_add (s, r) -> Fmt.pf ppf "(%a + %a)" pp s pp r
  | Set_remove (s, r) -> Fmt.pf ppf "(%a - %a)" pp s pp r
  | Set_singleton r -> Fmt.pf ppf "{%a}" pp r
  | Full_set -> Fmt.string ppf "ALL"
  | Succ e -> Fmt.pf ppf "(%a + 1)" pp e

let rec pp_b ppf = function
  | True -> Fmt.string ppf "true"
  | Not b -> Fmt.pf ppf "!(%a)" pp_b b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_b a pp_b b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_b a pp_b b
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" pp a pp b
  | Set_mem (r, s) -> Fmt.pf ppf "%a in %a" pp r pp s
  | Set_is_empty s -> Fmt.pf ppf "empty(%a)" pp s
