(** Schedulers: policies for resolving the nondeterminism of the
    asynchronous semantics during simulation.

    The refinement guarantees forward progress for {e some} remote under
    any scheduling (paper §2.5); the adversarial schedulers here exhibit
    the flip side — an individual remote can starve when the home's
    buffer is small (paper §6). *)

open Ccr_refine

type t = {
  name : string;
  pick :
    Random.State.t ->
    (Async.label * Async.state) list ->
    (Async.label * Async.state) option;
}

val uniform : t
(** Choose uniformly among enabled transitions. *)

val starve : int -> t
(** [starve i] never schedules a transition of remote [i] (or a delivery
    involving it) while any other transition is enabled: the adversary of
    the starvation discussion in §6. *)

val home_first : t
(** Prioritize home transitions; keeps buffers drained, minimizing
    nacks — the friendliest scheduling for message-count comparisons. *)
