lib/simulate/sched.mli: Async Ccr_refine Random
