lib/simulate/sim.ml: Array Async Ccr_core Ccr_refine Float Fmt Hashtbl List Prog Random Sched String
