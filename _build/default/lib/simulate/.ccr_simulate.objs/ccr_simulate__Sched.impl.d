lib/simulate/sched.ml: Async Ccr_refine Fmt List Random
