lib/simulate/sim.mli: Async Ccr_core Ccr_refine Fmt Prog Sched
