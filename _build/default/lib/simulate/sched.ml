open Ccr_refine

type t = {
  name : string;
  pick :
    Random.State.t ->
    (Async.label * Async.state) list ->
    (Async.label * Async.state) option;
}

let pick_uniform rng = function
  | [] -> None
  | succs -> Some (List.nth succs (Random.State.int rng (List.length succs)))

let uniform = { name = "uniform"; pick = pick_uniform }

let starve victim =
  {
    name = Fmt.str "starve-r%d" victim;
    pick =
      (fun rng succs ->
        let others =
          List.filter
            (fun ((l : Async.label), _) -> l.actor <> victim)
            succs
        in
        match others with
        | [] -> pick_uniform rng succs
        | _ -> pick_uniform rng others);
  }

let home_first =
  {
    name = "home-first";
    pick =
      (fun rng succs ->
        let home_rules =
          List.filter
            (fun ((l : Async.label), _) ->
              match l.rule with
              | Async.H_C1 | Async.H_C1_silent | Async.H_C2 | Async.H_T1
              | Async.H_T1_repl | Async.H_T2 | Async.H_T3 | Async.H_T4
              | Async.H_T5 | Async.H_T6 | Async.H_tau | Async.H_reply_send
              | Async.H_admit | Async.H_admit_progress | Async.H_nack_full ->
                true
              | _ -> false)
            succs
        in
        match home_rules with
        | [] -> pick_uniform rng succs
        | _ -> pick_uniform rng home_rules);
  }
