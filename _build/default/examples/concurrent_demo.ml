(* The derived protocol as a running system:

     dune exec examples/concurrent_demo.exe

   The home and each remote execute as OS threads, exchanging wire
   messages over FIFO channels — exactly the "implement directly, for
   example in microcode" output of the refinement, here in software.  No
   global lock, no scheduler: the interleavings are whatever the machine
   does.  At the end the system must be quiescent and the reassembled
   global state must satisfy the coherence invariants. *)

open Ccr_core
open Ccr_protocols
module Runtime = Ccr_runtime.Runtime

let () =
  let run name prog invariants budget =
    let s =
      Runtime.run ~budget ~invariants prog Ccr_refine.Async.{ k = 2 }
    in
    Fmt.pr "%-22s %a@.@." name Runtime.pp_stats s
  in
  Fmt.pr "running each protocol as %s@.@."
    "home + remotes threads over real channels";
  let mig = Link.compile ~n:4 (Migratory.system ()) in
  run "migratory n=4" mig (Migratory.async_invariants mig) 200;
  let inv = Link.compile ~n:3 Invalidate.system in
  run "invalidate n=3" inv (Invalidate.async_invariants inv) 200;
  let lock = Link.compile ~n:4 Lock_server.system in
  run "lock n=4" lock (Lock_server.async_invariants lock) 150;
  let bar = Link.compile ~n:4 Barrier.system in
  run "barrier n=4" bar (Barrier.async_invariants bar) 100;
  let hand = Migratory_hand.prog ~n:4 () in
  run "migratory-hand n=4" hand (Migratory_hand.async_invariants hand) 200;
  Fmt.pr
    "every run above executed the Table 1-2 rules concurrently and ended \
     with coherent state — the model-checked guarantees survive contact \
     with a real scheduler.@."
