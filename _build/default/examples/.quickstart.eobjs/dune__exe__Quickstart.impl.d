examples/quickstart.ml: Ccr_core Ccr_modelcheck Ccr_protocols Ccr_refine Ccr_semantics Ccr_viz Dsl Expr Fmt Link List Reqrep Validate Value
