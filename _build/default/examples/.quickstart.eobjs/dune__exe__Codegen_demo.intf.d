examples/codegen_demo.mli:
