examples/concurrent_demo.mli:
