examples/migratory_demo.ml: Ccr_core Ccr_modelcheck Ccr_protocols Ccr_refine Ccr_semantics Ccr_simulate Ccr_viz Fmt Link List Migratory Migratory_hand Reqrep
