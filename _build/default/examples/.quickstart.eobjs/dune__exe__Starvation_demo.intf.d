examples/starvation_demo.mli:
