examples/migratory_demo.mli:
