examples/invalidate_demo.ml: Ccr_core Ccr_protocols Ccr_refine Fmt Invalidate Link List
