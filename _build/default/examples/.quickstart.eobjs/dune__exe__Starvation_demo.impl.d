examples/starvation_demo.ml: Array Ccr_core Ccr_modelcheck Ccr_protocols Ccr_refine Ccr_simulate Fmt Link List Migratory String
