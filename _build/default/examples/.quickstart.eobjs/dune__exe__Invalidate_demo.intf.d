examples/invalidate_demo.mli:
