examples/msc_demo.mli:
