examples/concurrent_demo.ml: Barrier Ccr_core Ccr_protocols Ccr_refine Ccr_runtime Fmt Invalidate Link Lock_server Migratory Migratory_hand
