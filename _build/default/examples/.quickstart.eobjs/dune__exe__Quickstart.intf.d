examples/quickstart.mli:
