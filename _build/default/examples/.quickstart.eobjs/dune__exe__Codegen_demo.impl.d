examples/codegen_demo.ml: Array Ccr_core Ccr_protocols Ccr_refine Ccr_viz Filename Fmt Ir List Registry String Sys Unix
