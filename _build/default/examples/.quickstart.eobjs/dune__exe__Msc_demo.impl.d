examples/msc_demo.ml: Ccr_core Ccr_protocols Ccr_refine Ccr_viz
