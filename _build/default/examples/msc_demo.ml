(* Message-sequence chart of a refined-protocol execution:

     dune exec examples/msc_demo.exe

   '+' marks the sender at emission time, 'o' a local step (consumption,
   buffering, tau); the network is asynchronous, so an arrow's message is
   consumed at a later 'o' on the receiving lane.  Watch for the §3
   crossing: a remote's LR racing the home's inv, resolved by the
   implicit-nack rule (H-T3). *)

let () =
  let prog = Ccr_core.Link.compile ~n:2 (Ccr_protocols.Migratory.system ()) in
  print_string
    (Ccr_viz.Msc.render_run ~seed:42 ~steps:40 prog
       Ccr_refine.Async.{ k = 2 })
