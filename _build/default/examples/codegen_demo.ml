(* Export artifacts for every shipped protocol:

     dune exec examples/codegen_demo.exe -- [OUTDIR]

   Writes, per protocol: Graphviz renderings of the rendezvous processes
   and refined automata, a SPIN model of the rendezvous system (the
   paper's own verification route), and the refined dispatch tables as
   pseudo-C ("implementable directly, for example in microcode"). *)

open Ccr_core
open Ccr_protocols

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "_artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Fmt.pr "  wrote %s (%d bytes)@." path (String.length contents)
  in
  List.iter
    (fun (e : Registry.t) ->
      Fmt.pr "%s:@." e.name;
      (match e.system with
      | Some sys ->
        write (e.name ^ ".home.dot") (Ccr_viz.Dot.of_process sys.Ir.home);
        write (e.name ^ ".remote.dot") (Ccr_viz.Dot.of_process sys.Ir.remote);
        write (e.name ^ ".pml") (Ccr_viz.Promela.of_system ~n:2 sys)
      | None -> ());
      let prog = e.instantiate ~reqrep:true ~n:2 in
      let home = Ccr_refine.Compile.home_automaton prog in
      let remote = Ccr_refine.Compile.remote_automaton prog in
      write (e.name ^ ".refined.home.dot") (Ccr_viz.Dot.of_automaton home);
      write (e.name ^ ".refined.remote.dot") (Ccr_viz.Dot.of_automaton remote);
      write (e.name ^ ".home.c") (Ccr_refine.Codegen.emit_c home);
      write (e.name ^ ".remote.c") (Ccr_refine.Codegen.emit_c remote))
    Registry.all;
  Fmt.pr "render with: dot -Tpdf %s/migratory.refined.home.dot@." dir;
  Fmt.pr "verify with: spin -a %s/migratory.pml && gcc -o pan pan.c && ./pan@."
    dir
