(* The invalidate protocol: sharer sets, invalidation loops and the races
   the refinement untangles automatically.

     dune exec examples/invalidate_demo.exe

   Drives one concrete interleaving of the classic §2.1 scenario — a
   writer requests the line while readers share it and one reader evicts
   concurrently — showing each Table 1/2 rule as it fires. *)

open Ccr_core
open Ccr_protocols
module Async = Ccr_refine.Async

let prog = Link.compile ~n:3 Invalidate.system
let cfg = Async.{ k = 2 }

let step st pred descr =
  let succs = Async.successors prog cfg st in
  match List.find_opt (fun (l, _) -> pred l) succs with
  | Some (l, st') ->
    Fmt.pr "  %-16s %s@." (Fmt.str "%a" Async.pp_label l) descr;
    st'
  | None ->
    Fmt.pr "  STUCK; enabled:@.";
    List.iter (fun (l, _) -> Fmt.pr "    %a@." Async.pp_label l) succs;
    exit 1

let rule ?actor ?subject r (l : Async.label) =
  l.rule = r
  && (match actor with None -> true | Some a -> l.actor = a)
  && match subject with None -> true | Some s -> l.subject = s

let () =
  Fmt.pr "scenario: r0 and r1 read-share the line; r2 writes; r1 evicts \
          concurrently with the invalidation.@.@.";
  let st = Async.initial prog cfg in
  (* two readers acquire shared access *)
  let st = step st (rule ~actor:0 ~subject:"read" Async.R_tau) "r0's CPU issues a read" in
  let st = step st (rule ~actor:0 ~subject:"reqS" Async.R_C1) "r0 requests shared access" in
  let st = step st (rule ~actor:0 Async.H_admit) "the home buffers the request" in
  let st = step st (rule ~actor:0 Async.H_C1_silent) "consumed silently (reqS/grS pair)" in
  let st = step st (rule ~actor:0 Async.H_reply_send) "grS granted, fire-and-forget" in
  let st = step st (rule ~actor:0 Async.R_repl_recv) "r0 is a sharer" in
  let st = step st (rule ~actor:1 ~subject:"read" Async.R_tau) "r1's CPU issues a read" in
  let st = step st (rule ~actor:1 ~subject:"reqS" Async.R_C1) "r1 requests shared access" in
  let st = step st (rule ~actor:1 Async.H_admit) "buffered" in
  let st = step st (rule ~actor:1 Async.H_C1_silent) "consumed" in
  let st = step st (rule ~actor:1 Async.H_reply_send) "grS granted" in
  let st = step st (rule ~actor:1 Async.R_repl_recv) "r1 is a sharer" in
  Fmt.pr "@.state now:@.%a@.@." (Async.pp_state prog) st;
  (* the writer arrives *)
  let st =
    step st (rule ~actor:2 ~subject:"write" Async.R_tau)
      "r2's CPU issues a write"
  in
  let st = step st (rule ~actor:2 ~subject:"reqM" Async.R_C1) "r2 requests exclusive access" in
  let st = step st (rule ~actor:2 Async.H_admit) "buffered" in
  let st = step st (rule ~actor:2 Async.H_C1_silent) "consumed: invalidation begins" in
  (* the home picks a sharer to invalidate; meanwhile the other evicts *)
  let st = step st (rule ~actor:0 ~subject:"inv" Async.H_C2)
      "home invalidates r0 (chose it from the sharer set)" in
  let st = step st (rule ~actor:1 ~subject:"evict" Async.R_tau) "r1 evicts on its own" in
  let st = step st (rule ~actor:1 ~subject:"relS" Async.R_C1)
      "r1's release crosses the invalidation" in
  let st = step st (rule ~actor:0 ~subject:"inv" Async.R_deliver) "inv reaches r0" in
  let st = step st (rule ~actor:0 ~subject:"inv" Async.R_C3_silent)
      "r0 consumes it (inv/ID pair: no ack)" in
  let st = step st (rule ~actor:0 ~subject:"ID" Async.R_reply_send)
      "r0 replies invalidate-done" in
  let st = step st (rule ~actor:0 ~subject:"ID" Async.H_T1_repl)
      "the ID completes both rendezvous at the home" in
  (* now the crossing relS from r1 *)
  let st = step st (rule ~actor:1 ~subject:"relS" Async.H_admit)
      "r1's release is buffered" in
  let st = step st (rule Async.H_tau)
      "r1 still recorded as a sharer: another invalidation round" in
  let st = step st (rule ~actor:1 ~subject:"relS" Async.H_C1)
      "...but its release is already here: consumed, acked" in
  let st = step st (rule ~actor:1 Async.R_T1) "r1 sees the ack" in
  let st = step st (rule ~actor:2 Async.H_reply_send) "sharer set empty: grM sent" in
  let st = step st (rule ~actor:2 Async.R_repl_recv) "r2 owns the line" in
  Fmt.pr "@.final state:@.%a@." (Async.pp_state prog) st;
  (* sanity: coherence invariants on this state *)
  List.iter
    (fun (name, check) ->
      Fmt.pr "invariant %-24s %s@." name (if check st then "holds" else "FAILS"))
    (Invalidate.async_invariants prog)
