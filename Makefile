# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-fast bench-json par-smoke obs-smoke sym-smoke fault-smoke fuzz-smoke ooc-smoke journal-smoke engine-smoke resume-smoke serve-smoke examples artifacts clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-fast:
	CCR_BENCH_FAST=1 dune exec bench/main.exe

# Fast bench run that also emits per-row JSON (states/transitions/time/mem
# per protocol x n x level x jobs) next to the repo root.
bench-json:
	CCR_BENCH_FAST=1 CCR_BENCH_JSON=BENCH_$$(date +%Y%m%d).json dune exec bench/main.exe

# Quick seq-vs-par equivalence check (the par_explore suite only), with
# backtraces on so a worker-domain failure is attributable.
par-smoke:
	OCAMLRUNPARAM=b dune exec test/test_main.exe -- test par_explore

# Observability layer: unit suite, CLI cram checks, and a live run of
# every flag against a real protocol.
obs-smoke:
	dune build @all
	dune exec test/test_main.exe -- test obs
	dune build @test/cram/runtest
	dune exec bin/ccr.exe -- check invalidate -n 2 --level async \
	  --progress --trace /tmp/ccr-obs-smoke-trace.json --metrics-json -

# Symmetry reduction: unit suite (canonicalizer properties, quotient
# count equality vs the brute oracle at jobs 1/2/4), the --symmetry cram
# checks, and a live quotient run past the old n! cliff.
sym-smoke:
	dune build @all
	dune exec test/test_main.exe -- test symmetry
	dune build @test/cram/runtest
	dune exec bin/ccr.exe -- check migratory -n 7 --level async --symmetry auto

# Fault model: unit suite, the --faults cram checks, then the headline
# demonstration live — the vanilla refinement must FAIL (exit 2, with a
# starvation counterexample) under one dropped ack, and the hardened
# variant must absorb the same budget cleanly.
fault-smoke:
	dune build @all
	dune exec test/test_main.exe -- test faults
	dune build @test/cram/runtest
	! dune exec bin/ccr.exe -- check migratory -n 2 --faults drop=1@ack
	dune exec bin/ccr.exe -- check migratory -n 2 --faults drop=1@ack --harden
	dune exec bin/ccr.exe -- run migratory -n 2 --budget 20 --faults drop=1,dup=1 --harden --seed 3

# Differential fuzzer: unit suite (PRNG pins, codecs, shrinker, driver),
# the fuzz/eq1 cram checks, then a fixed-seed 100-instance campaign — all
# oracles must pass; any failure shrinks to a .ccr repro under /tmp.
fuzz-smoke:
	dune build @all
	dune exec test/test_main.exe -- test fuzz
	dune build @test/cram/runtest
	dune exec bin/ccr.exe -- fuzz --seed 0 --count 100 --max-states 8000 \
	  --out-dir /tmp/ccr-fuzz-smoke

# Storage & multi-process exploration: unit suites (mpx must fork
# before any test spawns a domain, so it runs alone first), then live —
# the memory-cliff headline (collapse completes migratory n=5 under an
# 8 MB cap that the plain store blows through), the out-of-core store,
# and a two-worker run whose counts must match.
ooc-smoke:
	dune build @all
	dune exec test/test_main.exe -- test mpx
	dune exec test/test_main.exe -- test store
	! dune exec bin/ccr.exe -- check migratory -n 5 --level async \
	  --symmetry off --mem 8 --max-states 2000000 2>/dev/null
	dune exec bin/ccr.exe -- check migratory -n 5 --level async \
	  --symmetry off --mem 8 --max-states 2000000 --store collapse
	dune exec bin/ccr.exe -- check migratory -n 4 --level async \
	  --symmetry off --store disk --workers 2 -j 2

# Loop engine: unit suite (rings, engine==threads registry coherence,
# trace replay), the run cram checks, then live — a sharded run, a
# hardened fault soak at engine rates, and the engine fuzz oracle.
engine-smoke:
	dune build @all
	dune exec test/test_main.exe -- test engine
	dune build @test/cram/runtest
	dune exec bin/ccr.exe -- run lock -n 4 --budget 2000 --engine loop -j 2
	dune exec bin/ccr.exe -- run migratory -n 2 --budget 200 --engine loop \
	  --faults drop=10,dup=10 --harden --seed 3
	dune exec bin/ccr.exe -- fuzz --seed 0 --count 40 --oracles engine \
	  --no-matrix

# Provenance journal & run reports: unit suites, the journal cram
# checks, then live — a journalled check, the rule-annotated starvation
# witness of the fault-model headline, and a report over the artifacts.
journal-smoke:
	dune build @all
	dune exec test/test_main.exe -- test journal
	dune exec test/test_main.exe -- test obs
	dune build @test/cram/journal
	rm -rf /tmp/ccr-journal-smoke && mkdir -p /tmp/ccr-journal-smoke
	dune exec bin/ccr.exe -- check migratory -n 2 --level async --prov mem \
	  --journal /tmp/ccr-journal-smoke/check.jsonl
	dune exec bin/ccr.exe -- explain migratory -n 2 --faults drop=1@ack --violation
	dune exec bin/ccr.exe -- fuzz --seed 0 --count 30 \
	  --journal /tmp/ccr-journal-smoke/fuzz.jsonl
	dune exec bin/ccr.exe -- report /tmp/ccr-journal-smoke

# Crash-safe checkpoint/resume: the unit suites (torn-write refusal,
# per-store resume pins, supervised respawn), the resume fuzz oracle,
# then live — runs SIGKILLed mid-exploration by CCR_CRASH_AT, resumed
# from their checkpoints and required to land on the uninterrupted pin
# (invalidate async n=3: 9263 states / 27191 transitions) under the
# sequential, multi-domain and multi-process engines; plus a worker
# kill that the supervisor must absorb without a resume.
resume-smoke:
	dune build @all
	dune exec test/test_main.exe -- test ckpt
	dune exec test/test_main.exe -- test ckpt-par
	dune exec bin/ccr.exe -- fuzz --seed 0 --count 25 --oracles resume \
	  --no-matrix
	rm -rf /tmp/ccr-resume-smoke && mkdir -p /tmp/ccr-resume-smoke
	! CCR_CRASH_AT=level=14 dune exec bin/ccr.exe -- check invalidate -n 3 \
	  --level async --checkpoint /tmp/ccr-resume-smoke/seq 2>/dev/null
	dune exec bin/ccr.exe -- check invalidate -n 3 --level async \
	  --resume /tmp/ccr-resume-smoke/seq \
	  | grep -q '9263 states, 27191 transitions'
	! CCR_CRASH_AT=level=14 dune exec bin/ccr.exe -- check invalidate -n 3 \
	  --level async -j 2 --checkpoint /tmp/ccr-resume-smoke/par 2>/dev/null
	dune exec bin/ccr.exe -- check invalidate -n 3 --level async -j 2 \
	  --resume /tmp/ccr-resume-smoke/par \
	  | grep -q '9263 states, 27191 transitions'
	CCR_CRASH_AT=worker=1,level=10 dune exec bin/ccr.exe -- check invalidate \
	  -n 3 --level async --workers 2 \
	  --checkpoint /tmp/ccr-resume-smoke/mpx \
	  | grep -q '9263 states, 27191 transitions'

# Checking service: the black-box conformance suite (forked daemons over
# loopback), the serve fuzz oracle (daemon verdicts must byte-match the
# in-process checker, warm hits must come from the cache), the client
# cram session, then live — a daemon on an ephemeral port answering a
# cold submission by exploration and the resubmission from its cache.
serve-smoke:
	dune build @all
	dune exec test/test_main.exe -- test serve
	dune build @test/cram/serve
	dune exec bin/ccr.exe -- fuzz --seed 0 --count 30 --oracles serve \
	  --no-matrix
	rm -rf /tmp/ccr-serve-smoke && mkdir -p /tmp/ccr-serve-smoke
	./_build/default/bin/ccr.exe serve --port 0 \
	  --port-file /tmp/ccr-serve-smoke/port \
	  --cache-dir /tmp/ccr-serve-smoke/cache & \
	pid=$$!; \
	for i in $$(seq 1 150); do \
	  test -s /tmp/ccr-serve-smoke/port && break; sleep 0.1; done; \
	./_build/default/bin/ccr.exe client submit invalidate -n 2 --wait \
	  --port $$(cat /tmp/ccr-serve-smoke/port) | grep -q '"cached":false' && \
	./_build/default/bin/ccr.exe client submit invalidate -n 2 --wait \
	  --port $$(cat /tmp/ccr-serve-smoke/port) | grep -q '"cached":true'; \
	status=$$?; kill -TERM $$pid; wait $$pid; exit $$status

examples:
	dune exec examples/quickstart.exe
	dune exec examples/migratory_demo.exe
	dune exec examples/invalidate_demo.exe
	dune exec examples/starvation_demo.exe
	dune exec examples/concurrent_demo.exe
	dune exec examples/msc_demo.exe

artifacts:
	dune exec examples/codegen_demo.exe -- _artifacts

clean:
	dune clean
