# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-fast examples artifacts clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-fast:
	CCR_BENCH_FAST=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/migratory_demo.exe
	dune exec examples/invalidate_demo.exe
	dune exec examples/starvation_demo.exe
	dune exec examples/concurrent_demo.exe
	dune exec examples/msc_demo.exe

artifacts:
	dune exec examples/codegen_demo.exe -- _artifacts

clean:
	dune clean
